#include "sched/wait_graph.h"

#include <algorithm>

#include "common/strings.h"

namespace pcpda {

const std::set<JobId> WaitGraph::kNoHolders;

void WaitGraph::Clear() { edges_.clear(); }

void WaitGraph::SetWaits(JobId waiter, std::vector<JobId> holders) {
  if (holders.empty()) {
    edges_.erase(waiter);
    return;
  }
  edges_[waiter] = std::set<JobId>(holders.begin(), holders.end());
}

void WaitGraph::ClearWaits(JobId waiter) { edges_.erase(waiter); }

bool WaitGraph::IsWaiting(JobId waiter) const {
  return edges_.contains(waiter);
}

const std::set<JobId>& WaitGraph::HoldersBlocking(JobId waiter) const {
  auto it = edges_.find(waiter);
  return it == edges_.end() ? kNoHolders : it->second;
}

std::vector<JobId> WaitGraph::waiters() const {
  std::vector<JobId> out;
  out.reserve(edges_.size());
  for (const auto& [waiter, holders] : edges_) out.push_back(waiter);
  return out;
}

std::optional<std::vector<JobId>> WaitGraph::FindCycle() const {
  enum class Color : std::uint8_t { kWhite, kGray, kBlack };
  std::map<JobId, Color> color;
  for (const auto& [waiter, holders] : edges_) {
    color.emplace(waiter, Color::kWhite);
    for (JobId h : holders) color.emplace(h, Color::kWhite);
  }
  std::vector<JobId> path;
  // Recursive DFS expressed iteratively via an explicit stack of
  // (node, next successor index).
  auto successors = [this](JobId node) -> const std::set<JobId>& {
    auto it = edges_.find(node);
    return it == edges_.end() ? kNoHolders : it->second;
  };
  for (const auto& [root, unused] : edges_) {
    if (color[root] != Color::kWhite) continue;
    std::vector<std::pair<JobId, std::set<JobId>::const_iterator>> stack;
    color[root] = Color::kGray;
    stack.emplace_back(root, successors(root).begin());
    path.assign(1, root);
    while (!stack.empty()) {
      auto& [node, it] = stack.back();
      if (it == successors(node).end()) {
        color[node] = Color::kBlack;
        stack.pop_back();
        path.pop_back();
        continue;
      }
      const JobId next = *it;
      ++it;
      if (color[next] == Color::kGray) {
        // Cycle: slice the current path from `next` onwards.
        auto start = std::find(path.begin(), path.end(), next);
        std::vector<JobId> cycle(start, path.end());
        // Rotate so the smallest id comes first (stable for tests).
        auto smallest = std::min_element(cycle.begin(), cycle.end());
        std::rotate(cycle.begin(), smallest, cycle.end());
        return cycle;
      }
      if (color[next] == Color::kWhite) {
        color[next] = Color::kGray;
        stack.emplace_back(next, successors(next).begin());
        path.push_back(next);
      }
    }
  }
  return std::nullopt;
}

std::string WaitGraph::DebugString() const {
  std::vector<std::string> lines;
  for (const auto& [waiter, holders] : edges_) {
    std::vector<std::string> ids;
    ids.reserve(holders.size());
    for (JobId h : holders) {
      ids.push_back(StrFormat("%lld", static_cast<long long>(h)));
    }
    lines.push_back(StrFormat("%lld waits-for {%s}",
                              static_cast<long long>(waiter),
                              Join(ids, ",").c_str()));
  }
  return lines.empty() ? "(no waits)" : Join(lines, "\n");
}

}  // namespace pcpda
