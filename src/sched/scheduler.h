#ifndef PCPDA_SCHED_SCHEDULER_H_
#define PCPDA_SCHED_SCHEDULER_H_

#include <map>
#include <vector>

#include "common/types.h"
#include "txn/job.h"

namespace pcpda {

/// Sorts active jobs into dispatch order: descending running priority,
/// then descending base priority (so a transaction donating its priority
/// is considered before the blocker that inherited it), then FIFO by
/// release time, then job id. The first job in this order that can make
/// progress gets the processor — the paper's priority-driven scheduling.
std::vector<Job*> DispatchOrder(
    const std::vector<Job*>& active,
    const std::map<JobId, Priority>& running_priorities);

/// In-place variant for the simulator's hot loop: sorts `order` by the
/// same strict total order, reading each job's running priority from the
/// job itself (the caller has just written the fixpoint back via
/// Job::set_running_priority). No per-call allocation.
void SortDispatchOrder(std::vector<Job*>& order);

}  // namespace pcpda

#endif  // PCPDA_SCHED_SCHEDULER_H_
