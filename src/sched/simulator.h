#ifndef PCPDA_SCHED_SIMULATOR_H_
#define PCPDA_SCHED_SIMULATOR_H_

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "db/ceilings.h"
#include "db/database.h"
#include "db/lock_table.h"
#include "fault/fault_plan.h"
#include "history/history.h"
#include "plan/compiled_plan.h"
#include "plan/job_arena.h"
#include "protocols/protocol.h"
#include "sched/auditor.h"
#include "sched/metrics.h"
#include "sched/wait_graph.h"
#include "sim/arrival_schedule.h"
#include "sim/calendar.h"
#include "trace/trace.h"
#include "txn/job.h"
#include "txn/spec.h"

namespace pcpda {

/// What to do when a job misses its deadline.
enum class DeadlineMissPolicy : std::uint8_t {
  /// Record the miss and let the job finish (default; keeps the paper's
  /// figures intact, e.g. Figure 3 where T1 runs past its deadline).
  kContinue,
  /// Record the miss and drop the job (release its locks, undo in-place
  /// writes).
  kDrop,
  /// Record the miss and halt the run.
  kHalt,
};

/// What to do when the wait-for graph contains a cycle.
enum class DeadlockPolicy : std::uint8_t {
  /// Record the deadlock and halt (ceiling protocols must never reach
  /// this; 2PL-PI can).
  kHalt,
  /// Abort (restart) the lowest-base-priority member of the cycle and
  /// continue.
  kAbortLowestPriority,
};

struct SimulatorOptions {
  /// Simulate ticks [0, horizon). Required > 0.
  Tick horizon = 0;
  DeadlineMissPolicy miss_policy = DeadlineMissPolicy::kContinue;
  DeadlockPolicy deadlock_policy = DeadlockPolicy::kHalt;
  /// Record the per-tick schedule and events (needed by Gantt/figures).
  bool record_trace = true;
  /// Record the operation history (needed by the serializability checker).
  bool record_history = true;
  /// Release schedule override (sporadic/Poisson/trace arrivals). When
  /// null, releases follow the specs' periodic calendar — the paper's
  /// model. Must outlive the simulator.
  const ArrivalSchedule* arrival_schedule = nullptr;
  /// Fault plan: injected aborts, overruns and arrival jitter. Empty
  /// (default) injects nothing. Validated at Run(); a bad config yields a
  /// non-OK SimResult.status.
  FaultConfig faults;
  /// Run the per-tick invariant auditor; violations land in
  /// SimResult.audit and make SimResult.status non-OK.
  bool audit = false;
  /// When non-zero, bound the recorded trace to (roughly) the most recent
  /// `max_trace_events` discrete events and the same number of tick
  /// records, so long horizons don't hold every event ever traced in
  /// memory. 0 (default) keeps everything. Dropped counts are reported by
  /// Trace::dropped_events()/dropped_ticks().
  std::size_t max_trace_events = 0;
  /// Cooperative cancellation: checked once per scheduled tick. When the
  /// pointed-at flag becomes true (a wall-clock watchdog, a SIGINT
  /// handler), the run stops at the next tick boundary and returns
  /// kDeadlineExceeded — the partial metrics are not trustworthy. Null
  /// (default) never cancels; must outlive Run().
  const std::atomic<bool>* cancel = nullptr;
  /// Deterministic watchdog: abandon the run with kDeadlineExceeded after
  /// this many scheduled (non-fast-forwarded) ticks, independent of the
  /// horizon. 0 (default) is unlimited. Unlike `cancel`, the outcome
  /// depends only on the inputs, so campaigns that rely on byte-identical
  /// resume use this budget as the primary hang guard.
  Tick max_sim_ticks = 0;
};

/// Outcome of one run.
struct SimResult {
  /// Non-OK for configuration errors (InvalidArgument) and for invariant
  /// audit failures (Internal).
  Status status;
  RunMetrics metrics;
  Trace trace;
  History history;
  /// Populated when options.audit is set.
  AuditReport audit;
  bool deadlock_detected = false;
};

/// The single-processor, memory-resident-database, priority-driven
/// transaction scheduler of the paper, parameterized by a concurrency
/// control protocol. Discrete time; each tick the highest running-priority
/// job that can make progress executes (Section 5).
///
/// The inner loop is event-driven: arrivals come from a calendar cursor
/// (O(log specs) per release instead of an O(specs) scan per tick), jobs
/// leave the scan set the moment they commit or are dropped (the full
/// archive stays addressable by id for metrics, replay and the auditor),
/// and ticks where no job is in flight are fast-forwarded to the next
/// arrival while still being credited as idle — with traces, metrics and
/// audit reports bit-identical to the per-tick engine it replaced (pinned
/// by tests/determinism_test.cc).
class Simulator : public SimView {
 public:
  /// `set` and `protocol` must outlive the simulator. Builds the static
  /// ceilings and the arrival cursor from scratch — the interpreted path.
  Simulator(const TransactionSet* set, Protocol* protocol,
            SimulatorOptions options);
  /// Compiled path: reuses the plan's precomputed ceilings and arrival
  /// cursor instead of rebuilding them per run. The simulator keeps a
  /// copy of the plan (cheap: shared state), so `plan` itself need not
  /// outlive it. Behavior is byte-identical to the interpreted ctor on
  /// the same scenario (pinned by tests/determinism_test.cc).
  Simulator(const CompiledPlan& plan, Protocol* protocol,
            SimulatorOptions options);
  ~Simulator() override;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Runs the full simulation and returns the result. Call once.
  SimResult Run();

  // --- SimView ------------------------------------------------------------
  const TransactionSet& set() const override { return *set_; }
  const StaticCeilings& ceilings() const override { return *ceilings_; }
  const LockTable& locks() const override { return lock_table_; }
  const Database& database() const override { return database_; }
  const Job* job(JobId id) const override;
  Tick now() const override { return tick_; }
  std::vector<const Job*> LiveJobs(JobId except) const override;

 private:
  struct PendingBlock {
    ItemId item = kInvalidItem;
    LockMode mode = LockMode::kRead;
    BlockReason reason = BlockReason::kNone;
    std::vector<JobId> blockers;
    std::string note;
  };

  /// Pops the arrivals due at tick_ from the schedule override or the
  /// calendar cursor (both yield (tick, spec) order).
  std::vector<Arrival> TakeDueArrivals();
  /// Tick of the next not-yet-released arrival, or kNoTick if none left.
  Tick NextArrivalTick() const;
  /// With no job in flight, jumps tick_ to the next arrival (capped at the
  /// horizon), crediting idle_ticks and emitting the same idle TickRecords
  /// the per-tick loop would have. Only called when neither a fault plan
  /// (which may inject arrivals or consume per-tick randomness) nor the
  /// auditor (which inspects every tick) is attached.
  void FastForwardIdleGap();
  void ReleaseArrivals();
  void CheckDeadlines();
  /// Applies this tick's job faults (aborts, spurious restarts, WCET
  /// overruns) before dispatch resolution.
  void ApplyFaults();
  /// Runs the invariant auditor over the end-of-tick state.
  void AuditNow();
  /// Resolves this tick's dispatch: rebuilds blocking edges to a fixpoint
  /// and picks the runner. Returns the chosen job (nullptr if idle) and
  /// fills blocked_now_.
  Job* ResolveDispatch();
  /// Handles at most one wait-for cycle per policy. Returns true when a
  /// cycle was found (the caller must re-resolve dispatch unless the run
  /// halted).
  bool HandleOneDeadlock();
  /// Grants the pending lock for `job`'s current step, recording effects.
  void AdmitStep(Job& job);
  /// Runs one tick of `job`, handling step completion and commit.
  void ExecuteTick(Job& job);
  void CompleteStep(Job& job, const Step& step);
  void Commit(Job& job);
  /// Aborts a job (2PL-HP victim or deadlock victim): undoes in-place
  /// writes, releases locks, restarts from the first step.
  void AbortAndRestart(Job& victim, const char* why);
  void DropJob(Job& job);
  /// Moves a just-committed/dropped job out of the active scan set; it
  /// stays in the jobs_ archive (and in retired_this_tick_ for this
  /// tick's audit).
  void RetireJob(Job& job);
  void RecordTick(const Job* runner, StepKind runner_kind);
  std::vector<Job*> ActiveJobs();
  SpecMetrics& metrics_for(SpecId spec);

  /// True when the job's current step requires a lock it does not hold.
  bool NeedsLock(const Job& job) const;
  LockMode NeededMode(const Job& job) const;

  /// Delegation target of both public ctors; `plan` may be null.
  Simulator(const TransactionSet* set, const CompiledPlan* plan,
            Protocol* protocol, SimulatorOptions options);

  const TransactionSet* set_;
  Protocol* protocol_;
  SimulatorOptions options_;

  /// Holds the compiled artifact alive on the compiled path; empty
  /// (ok() == false) on the interpreted path.
  CompiledPlan plan_;
  /// Built per run only when no plan supplies them.
  std::unique_ptr<const StaticCeilings> owned_ceilings_;
  /// Points into plan_ or at owned_ceilings_.
  const StaticCeilings* ceilings_;
  Database database_;
  LockTable lock_table_;
  WaitGraph wait_graph_;
  Trace trace_;
  History history_;
  RunMetrics metrics_;

  Tick tick_ = 0;
  std::int64_t seq_ = 0;
  bool halted_ = false;
  /// Archive of every released job, owning, indexed by JobId. Retired
  /// (committed/dropped) jobs stay here for metrics, replay-checking and
  /// auditor lookups; only active_jobs_ is scanned per tick.
  std::vector<std::unique_ptr<Job>> jobs_;
  /// The per-tick scan set: jobs still in flight, in id (= release)
  /// order. Maintained by ReleaseArrivals and RetireJob.
  std::vector<Job*> active_jobs_;
  /// Jobs that retired during the current tick; the end-of-tick audit
  /// still sees their final state.
  std::vector<const Job*> retired_this_tick_;
  /// Event source when no arrival-schedule override is set.
  std::optional<ArrivalCalendar::Cursor> calendar_cursor_;
  /// Read position into options_.arrival_schedule->arrivals().
  std::size_t schedule_pos_ = 0;
  /// Jobs blocked this tick (job id -> details), rebuilt each tick.
  /// Dense slot maps (plan/job_arena.h) replace the former
  /// std::map<JobId, ...> hot state: same ascending-id iteration order,
  /// O(1) lookup, and slot storage that is reused across ticks instead
  /// of reallocated.
  JobSlotMap<PendingBlock> blocked_now_;
  /// Block annotation per job during the previous tick (for the kBlock
  /// edge trigger: a new episode OR a changed reason re-traces) and
  /// per-job effective-blocking accumulation.
  JobSlotMap<std::string> blocked_prev_;
  /// Next tick's blocked_prev_, built during RecordTick then swapped in
  /// so both maps keep their slot capacity.
  JobSlotMap<std::string> blocked_scratch_;
  JobSlotMap<Tick> effective_blocking_by_job_;
  /// The decision produced for the runner during dispatch resolution.
  JobSlotMap<LockDecision> granted_decision_;
  /// Per-sweep scratch reused across dispatch resolutions: the running-
  /// priority fixpoint, the dispatch order, the sorted holder set of a
  /// kBlock decision, and the stale waiters to clear.
  JobSlotMap<Priority> running_scratch_;
  std::vector<Job*> dispatch_scratch_;
  std::vector<JobId> holders_scratch_;
  std::vector<JobId> stale_waiters_scratch_;
  std::unique_ptr<FaultPlan> fault_plan_;
  std::unique_ptr<InvariantAuditor> auditor_;
  bool ran_ = false;

  /// Cross-tick dispatch memo. Every input of ResolveDispatch — the
  /// active set, step cursors/admission flags, dynamic read sets, lock
  /// table, wait graph and protocol state — only changes at the marked
  /// mutation points (arrival, admission of a lock step, step
  /// completion, commit/drop/abort, fault application). Decide is pure
  /// by contract, so while dispatch_dirty_ stays false the previous
  /// tick's resolution (last_runner_, blocked_now_, wait edges) is
  /// reused verbatim; a job executing a k-tick step resolves O(1) times
  /// instead of k. Byte-identical by construction, pinned by
  /// tests/determinism_test.cc.
  bool dispatch_dirty_ = true;
  Job* last_runner_ = nullptr;
};

}  // namespace pcpda

#endif  // PCPDA_SCHED_SIMULATOR_H_
