#include "sched/simulator.h"

#include <algorithm>
#include <map>

#include "common/check.h"
#include "common/strings.h"
#include "sched/inheritance.h"
#include "sched/scheduler.h"
#include "sim/calendar.h"

namespace pcpda {

Simulator::Simulator(const TransactionSet* set, Protocol* protocol,
                     SimulatorOptions options)
    : Simulator(set, /*plan=*/nullptr, protocol, std::move(options)) {}

Simulator::Simulator(const CompiledPlan& plan, Protocol* protocol,
                     SimulatorOptions options)
    : Simulator(&plan.set(), &plan, protocol, std::move(options)) {}

Simulator::Simulator(const TransactionSet* set, const CompiledPlan* plan,
                     Protocol* protocol, SimulatorOptions options)
    : set_(set),
      protocol_(protocol),
      options_(std::move(options)),
      plan_(plan != nullptr ? *plan : CompiledPlan{}),
      owned_ceilings_(plan != nullptr
                          ? nullptr
                          : std::make_unique<const StaticCeilings>(*set)),
      ceilings_(plan != nullptr ? &plan_.ceilings() : owned_ceilings_.get()),
      database_(set->item_count()),
      lock_table_(set->item_count()) {
  PCPDA_CHECK(set != nullptr);
  PCPDA_CHECK(protocol != nullptr);
  if (options_.arrival_schedule == nullptr) {
    // The plan's prebuilt cursor is a byte-identical copy of what
    // MakeCursor() would build from scratch — same heap, same pop order.
    if (plan_.ok()) {
      calendar_cursor_.emplace(plan_.MakeCursor());
    } else {
      calendar_cursor_.emplace(ArrivalCalendar(set_).MakeCursor());
    }
  }
}

Simulator::~Simulator() = default;

const Job* Simulator::job(JobId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= jobs_.size()) return nullptr;
  return jobs_[static_cast<std::size_t>(id)].get();
}

std::vector<const Job*> Simulator::LiveJobs(JobId except) const {
  std::vector<const Job*> live;
  live.reserve(active_jobs_.size());
  for (const Job* job : active_jobs_) {
    if (job->id() != except) live.push_back(job);
  }
  return live;
}

SpecMetrics& Simulator::metrics_for(SpecId spec) {
  PCPDA_CHECK(spec >= 0 &&
              static_cast<std::size_t>(spec) < metrics_.per_spec.size());
  return metrics_.per_spec[static_cast<std::size_t>(spec)];
}

std::vector<Job*> Simulator::ActiveJobs() { return active_jobs_; }

bool Simulator::NeedsLock(const Job& job) const {
  if (job.BodyDone() || job.step_admitted()) return false;
  const Step& step = job.current_step();
  switch (step.kind) {
    case StepKind::kCompute:
      return false;
    case StepKind::kRead:
      return !lock_table_.HoldsRead(job.id(), step.item) &&
             !lock_table_.HoldsWrite(job.id(), step.item);
    case StepKind::kWrite:
      return !lock_table_.HoldsWrite(job.id(), step.item);
  }
  PCPDA_UNREACHABLE("bad StepKind");
}

LockMode Simulator::NeededMode(const Job& job) const {
  return job.current_step().kind == StepKind::kRead ? LockMode::kRead
                                                    : LockMode::kWrite;
}

std::vector<Arrival> Simulator::TakeDueArrivals() {
  if (options_.arrival_schedule != nullptr) {
    const std::vector<Arrival>& all =
        options_.arrival_schedule->arrivals();
    std::vector<Arrival> due;
    while (schedule_pos_ < all.size() &&
           all[schedule_pos_].tick == tick_) {
      due.push_back(all[schedule_pos_++]);
    }
    PCPDA_CHECK_MSG(
        schedule_pos_ >= all.size() || all[schedule_pos_].tick > tick_,
        "arrival schedule fell behind the simulation clock");
    return due;
  }
  return calendar_cursor_->PopAt(tick_);
}

Tick Simulator::NextArrivalTick() const {
  if (options_.arrival_schedule != nullptr) {
    const std::vector<Arrival>& all =
        options_.arrival_schedule->arrivals();
    return schedule_pos_ < all.size() ? all[schedule_pos_].tick : kNoTick;
  }
  return calendar_cursor_->NextTick();
}

void Simulator::ReleaseArrivals() {
  std::vector<Arrival> due = TakeDueArrivals();
  if (fault_plan_ != nullptr) {
    due = fault_plan_->TransformArrivals(tick_, std::move(due));
  }
  if (!due.empty()) dispatch_dirty_ = true;
  for (const Arrival& arrival : due) {
    const Tick rel_deadline = set_->RelativeDeadline(arrival.spec);
    const Tick deadline =
        rel_deadline == kNoTick ? kNoTick : tick_ + rel_deadline;
    const JobId id = static_cast<JobId>(jobs_.size());
    jobs_.push_back(std::make_unique<Job>(id, set_, arrival.spec,
                                          arrival.instance, tick_, deadline));
    active_jobs_.push_back(jobs_.back().get());
    ++metrics_for(arrival.spec).released;
    if (options_.record_trace) {
      TraceEvent event;
      event.tick = tick_;
      event.kind = TraceKind::kArrival;
      event.job = id;
      event.spec = arrival.spec;
      event.instance = arrival.instance;
      trace_.AddEvent(event);
    }
  }
}

void Simulator::CheckDeadlines() {
  // kDrop retires jobs mid-loop, so walk a snapshot of the scan set.
  const std::vector<Job*> snapshot = active_jobs_;
  for (Job* active : snapshot) {
    Job& job = *active;
    if (job.deadline_miss_recorded()) continue;
    if (job.absolute_deadline() == kNoTick ||
        job.absolute_deadline() > tick_) {
      continue;
    }
    job.set_deadline_miss_recorded();
    ++metrics_for(job.spec_id()).deadline_misses;
    if (options_.record_trace) {
      TraceEvent event;
      event.tick = job.absolute_deadline();
      event.kind = TraceKind::kDeadlineMiss;
      event.job = job.id();
      event.spec = job.spec_id();
      event.instance = job.instance();
      trace_.AddEvent(event);
    }
    switch (options_.miss_policy) {
      case DeadlineMissPolicy::kContinue:
        break;
      case DeadlineMissPolicy::kDrop:
        DropJob(job);
        break;
      case DeadlineMissPolicy::kHalt:
        metrics_.halted_on_miss = true;
        halted_ = true;
        return;
    }
  }
}

void Simulator::ApplyFaults() {
  if (fault_plan_ == nullptr) return;
  std::vector<const Job*> active(active_jobs_.begin(), active_jobs_.end());
  std::map<JobId, bool> holds_lock;
  for (const Job* job : active_jobs_) {
    holds_lock[job->id()] =
        !lock_table_.read_items(job->id()).empty() ||
        !lock_table_.write_items(job->id()).empty();
  }
  for (const JobFault& fault : fault_plan_->JobFaultsAt(tick_, active,
                                                        holds_lock)) {
    Job* victim = const_cast<Job*>(job(fault.job));
    PCPDA_CHECK(victim != nullptr && victim->active());
    // Abort-style faults are unsound for early-release protocols (CCP
    // hands locks back before commit and assumes no aborts); suppress
    // them rather than corrupt the database.
    const bool is_abort = fault.kind == FaultKind::kAbort ||
                          fault.kind == FaultKind::kRestartInCs;
    const bool skipped = is_abort && protocol_->releases_early();
    if (options_.record_trace) {
      TraceEvent event;
      event.tick = tick_;
      event.kind = TraceKind::kFault;
      event.job = victim->id();
      event.spec = victim->spec_id();
      event.instance = victim->instance();
      event.note = skipped ? fault.note + " (skipped: early-release)"
                           : fault.note;
      trace_.AddEvent(event);
    }
    if (skipped) {
      ++metrics_.faults.skipped_aborts;
      continue;
    }
    dispatch_dirty_ = true;
    switch (fault.kind) {
      case FaultKind::kAbort:
        ++metrics_.faults.injected_aborts;
        AbortAndRestart(*victim, fault.note.c_str());
        break;
      case FaultKind::kRestartInCs:
        ++metrics_.faults.injected_restarts;
        AbortAndRestart(*victim, fault.note.c_str());
        break;
      case FaultKind::kOverrun:
        ++metrics_.faults.overruns;
        metrics_.faults.overrun_ticks += fault.extra;
        victim->InflateCurrentStep(fault.extra);
        break;
      case FaultKind::kDelayArrival:
      case FaultKind::kBurstArrival:
        PCPDA_UNREACHABLE("arrival faults are not job faults");
    }
  }
}

Job* Simulator::ResolveDispatch() {
  // Abort applications (HP victims, optimistic self-aborts) restart the
  // resolution; they always release locks or clear protocol state, so the
  // bound below only trips on a protocol that aborts without progress.
  std::size_t abort_rounds = 0;
  const std::size_t max_abort_rounds = 16 + 4 * jobs_.size();
  for (;;) {
    PCPDA_CHECK_MSG(abort_rounds++ <= max_abort_rounds,
                    "dispatch resolution is not making progress");
    blocked_now_.clear();
    granted_decision_.clear();

    // The wait graph persists across ticks (outstanding denied requests
    // keep donating priority); drop edges of jobs that are gone. A job
    // is in the active scan set iff it is still active() (RetireJob is
    // only reached through MarkCommitted/MarkDropped), so the archive
    // answers membership without building a key set. ClearWaits mutates
    // the edge list, so collect first.
    stale_waiters_scratch_.clear();
    for (JobId waiter : wait_graph_.waiter_ids()) {
      if (!jobs_[static_cast<std::size_t>(waiter)]->active()) {
        stale_waiters_scratch_.push_back(waiter);
      }
    }
    for (JobId waiter : stale_waiters_scratch_) {
      wait_graph_.ClearWaits(waiter);
    }

    // Evaluate every outstanding lock request against the protocol. The
    // locking conditions compare the requester's RUNNING priority
    // (Section 7 of the paper: "priority ... always refers to ... its
    // running priority"), and running priorities in turn depend on the
    // wait-for edges the decisions create — so iterate to a fixpoint.
    // Each sweep walks jobs in descending running priority, so a waiter's
    // denial raises its blocker before the blocker is evaluated; the
    // sweep cap guards against pathological oscillation.
    const std::size_t max_sweeps = 4 * active_jobs_.size() + 8;
    for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
      running_scratch_.clear();
      for (Job* job : active_jobs_) {
        running_scratch_[job->id()] = job->base_priority();
      }
      ComputeRunningPrioritiesDense(
          running_scratch_, wait_graph_,
          protocol_->uses_priority_inheritance());
      for (Job* job : active_jobs_) {
        job->set_running_priority(running_scratch_.at(job->id()));
      }
      dispatch_scratch_ = active_jobs_;
      SortDispatchOrder(dispatch_scratch_);
      bool changed = false;
      for (Job* job : dispatch_scratch_) {
        if (!NeedsLock(*job)) {
          if (wait_graph_.IsWaiting(job->id())) {
            wait_graph_.ClearWaits(job->id());
            changed = true;
          }
          blocked_now_.erase(job->id());
          continue;
        }
        const Step& step = job->current_step();
        LockRequest request{job, step.item, NeededMode(*job)};
        LockDecision decision = protocol_->Decide(request);
        ++metrics_.lock_decisions;
        if (decision.kind == LockDecision::Kind::kBlock) {
          holders_scratch_.assign(decision.jobs.begin(),
                                  decision.jobs.end());
          std::sort(holders_scratch_.begin(), holders_scratch_.end());
          holders_scratch_.erase(std::unique(holders_scratch_.begin(),
                                             holders_scratch_.end()),
                                 holders_scratch_.end());
          // HoldersBlocking yields the stored sorted-unique holder set,
          // so this compares the same sets the std::set version did.
          if (wait_graph_.HoldersBlocking(job->id()) != holders_scratch_) {
            wait_graph_.SetWaits(job->id(), decision.jobs);
            changed = true;
          }
          PendingBlock& pb = blocked_now_[job->id()];
          pb.item = request.item;
          pb.mode = request.mode;
          pb.reason = decision.reason;
          pb.blockers = decision.jobs;
          pb.note = std::move(decision.note);
        } else {
          if (wait_graph_.IsWaiting(job->id())) {
            wait_graph_.ClearWaits(job->id());
            changed = true;
          }
          blocked_now_.erase(job->id());
          granted_decision_[job->id()] = std::move(decision);
        }
        if (changed) break;  // priorities moved: restart the sweep
      }
      if (!changed) break;
    }

    // Dispatch the highest running-priority job that is not blocked.
    // dispatch_scratch_ still holds the final sweep's order — the same
    // order the running map from that sweep would produce.
    Job* chosen = nullptr;
    for (Job* job : dispatch_scratch_) {
      if (!blocked_now_.contains(job->id())) {
        chosen = job;
        break;
      }
    }
    if (chosen != nullptr) {
      const LockDecision* granted = granted_decision_.find(chosen->id());
      if (granted != nullptr &&
          granted->kind == LockDecision::Kind::kAbortAndGrant) {
        // Apply the aborts, then re-resolve against the new lock state.
        for (JobId victim_id : granted->jobs) {
          Job* victim = const_cast<Job*>(job(victim_id));
          PCPDA_CHECK_MSG(victim != nullptr && victim->active(),
                          "abort victim not active");
          AbortAndRestart(*victim, granted->note.empty()
                                       ? "abort"
                                       : granted->note.c_str());
        }
        continue;
      }
      if (granted != nullptr &&
          granted->kind == LockDecision::Kind::kAbortRequester) {
        // Optimistic self-abort: restart the requester, then re-resolve.
        AbortAndRestart(*chosen, granted->note.empty()
                                     ? "self-abort"
                                     : granted->note.c_str());
        continue;
      }
    }
    return chosen;
  }
}

bool Simulator::HandleOneDeadlock() {
  auto cycle = wait_graph_.FindCycle();
  if (!cycle.has_value()) return false;
  ++metrics_.deadlocks;
  if (options_.record_trace) {
    TraceEvent event;
    event.tick = tick_;
    event.kind = TraceKind::kDeadlock;
    event.others = *cycle;
    if (!cycle->empty()) {
      const Job* first = job(cycle->front());
      if (first != nullptr) {
        event.job = first->id();
        event.spec = first->spec_id();
        event.instance = first->instance();
      }
    }
    trace_.AddEvent(event);
  }
  if (options_.deadlock_policy == DeadlockPolicy::kHalt) {
    metrics_.halted_on_deadlock = true;
    halted_ = true;
    return true;
  }
  // Abort the lowest-base-priority member of the cycle; the caller
  // re-resolves dispatch against the freed locks.
  Job* victim = nullptr;
  for (JobId id : *cycle) {
    Job* member = const_cast<Job*>(job(id));
    PCPDA_CHECK(member != nullptr);
    if (victim == nullptr ||
        member->base_priority() < victim->base_priority()) {
      victim = member;
    }
  }
  PCPDA_CHECK(victim != nullptr);
  AbortAndRestart(*victim, "deadlock-victim");
  return true;
}

void Simulator::AdmitStep(Job& job) {
  PCPDA_CHECK(!job.BodyDone());
  PCPDA_CHECK(!job.step_admitted());
  const Step& step = job.current_step();
  if (step.kind == StepKind::kCompute) {
    // Flag-only change: NeedsLock was already false, dispatch unaffected.
    job.set_step_admitted(true);
    return;
  }
  // Lock acquisition and the RecordRead below feed later decisions (the
  // wr-guard reads other jobs' dynamic read sets), so the memo dies here.
  dispatch_dirty_ = true;
  const bool needed_grant = NeedsLock(job);
  if (needed_grant) {
    std::string note;
    const LockDecision* granted = granted_decision_.find(job.id());
    if (granted != nullptr) note = granted->note;
    if (step.kind == StepKind::kRead) {
      lock_table_.AcquireRead(job.id(), step.item);
    } else {
      lock_table_.AcquireWrite(job.id(), step.item);
    }
    if (options_.record_trace) {
      TraceEvent event;
      event.tick = tick_;
      event.kind = TraceKind::kLockGrant;
      event.job = job.id();
      event.spec = job.spec_id();
      event.instance = job.instance();
      event.item = step.item;
      event.mode = NeededMode(job);
      event.note = std::move(note);
      trace_.AddEvent(event);
    }
  }
  if (step.kind == StepKind::kRead) {
    // The read takes effect at admission: sample the value (the job's own
    // workspace first — such reads are local to the transaction).
    const bool own = job.workspace().Contains(step.item);
    const Value value =
        own ? *job.workspace().Get(step.item) : database_.Read(step.item);
    if (!own) job.RecordRead(step.item);
    if (options_.record_history) {
      history_.RecordRead(job.id(), step.item, tick_, seq_++, value, own);
    }
  }
  job.set_step_admitted(true);
}

void Simulator::CompleteStep(Job& job, const Step& step) {
  if (step.kind == StepKind::kWrite) {
    if (protocol_->update_model() == UpdateModel::kWorkspace) {
      job.workspace().Put(step.item, Value{job.id(), 0});
    } else {
      job.RecordUndo(step.item, database_.Read(step.item));
      database_.Write(step.item, job.id());
      if (options_.record_history) {
        history_.RecordWrite(job.id(), step.item, tick_, seq_++);
      }
    }
  }
  // CCP-style early unlocking once the protocol allows it. Skipped when
  // the body is done: the commit releases everything anyway.
  if (job.BodyDone()) return;
  for (const auto& [item, mode] : protocol_->EarlyReleases(job)) {
    lock_table_.Release(job.id(), item, mode);
    if (options_.record_trace) {
      TraceEvent event;
      event.tick = tick_;
      event.kind = TraceKind::kEarlyRelease;
      event.job = job.id();
      event.spec = job.spec_id();
      event.instance = job.instance();
      event.item = item;
      event.mode = mode;
      trace_.AddEvent(event);
    }
  }
}

void Simulator::Commit(Job& job) {
  PCPDA_CHECK(job.BodyDone());
  // Forward validation (optimistic protocols): abort the victims the
  // protocol names before the commit takes effect.
  for (JobId victim_id : protocol_->CommitVictims(job)) {
    Job* victim = const_cast<Job*>(this->job(victim_id));
    PCPDA_CHECK_MSG(victim != nullptr && victim->active(),
                    "commit victim not active");
    PCPDA_CHECK_MSG(victim->id() != job.id(),
                    "a committing job cannot be its own victim");
    AbortAndRestart(*victim, "validation");
  }
  // Deferred updates reach the database atomically at commit.
  if (protocol_->update_model() == UpdateModel::kWorkspace) {
    for (const auto& [item, unused] : job.workspace().writes()) {
      database_.Write(item, job.id());
      if (options_.record_history) {
        history_.RecordWrite(job.id(), item, tick_, seq_++);
      }
    }
  }
  lock_table_.ReleaseAll(job.id());
  const Tick commit_time = tick_ + 1;
  if (options_.record_history) {
    history_.RecordCommit(job.id(), job.spec_id(), job.instance(),
                          commit_time, seq_++);
  }
  if (options_.record_trace) {
    TraceEvent event;
    event.tick = commit_time;
    event.kind = TraceKind::kCommit;
    event.job = job.id();
    event.spec = job.spec_id();
    event.instance = job.instance();
    trace_.AddEvent(event);
  }
  SpecMetrics& m = metrics_for(job.spec_id());
  ++m.committed;
  const Tick response = commit_time - job.release_time();
  m.max_response = std::max(m.max_response, response);
  m.total_response += static_cast<double>(response);
  m.responses.push_back(response);
  const Tick* eb = effective_blocking_by_job_.find(job.id());
  if (eb != nullptr) {
    m.max_effective_blocking = std::max(m.max_effective_blocking, *eb);
    effective_blocking_by_job_.erase(job.id());
  }
  job.MarkCommitted(commit_time);
  RetireJob(job);
  protocol_->OnCommitApplied(job);
}

void Simulator::AbortAndRestart(Job& victim, const char* why) {
  dispatch_dirty_ = true;
  // Undo in-place writes (newest pre-images are irrelevant: the undo log
  // keeps the value from before the job's first write of each item).
  for (const auto& [item, before] : victim.undo_log()) {
    database_.Restore(item, before);
  }
  lock_table_.ReleaseAll(victim.id());
  wait_graph_.ClearWaits(victim.id());
  history_.DiscardPending(victim.id());
  ++metrics_for(victim.spec_id()).restarts;
  if (options_.record_trace) {
    TraceEvent event;
    event.tick = tick_;
    event.kind = TraceKind::kRestart;
    event.job = victim.id();
    event.spec = victim.spec_id();
    event.instance = victim.instance();
    event.note = why;
    trace_.AddEvent(event);
  }
  victim.ResetForRestart();
  protocol_->OnAbortApplied(victim);
}

void Simulator::DropJob(Job& job) {
  dispatch_dirty_ = true;
  for (const auto& [item, before] : job.undo_log()) {
    database_.Restore(item, before);
  }
  lock_table_.ReleaseAll(job.id());
  wait_graph_.ClearWaits(job.id());
  history_.DiscardPending(job.id());
  ++metrics_for(job.spec_id()).dropped;
  if (options_.record_trace) {
    TraceEvent event;
    event.tick = tick_;
    event.kind = TraceKind::kDrop;
    event.job = job.id();
    event.spec = job.spec_id();
    event.instance = job.instance();
    trace_.AddEvent(event);
  }
  const Tick* eb = effective_blocking_by_job_.find(job.id());
  if (eb != nullptr) {
    SpecMetrics& m = metrics_for(job.spec_id());
    m.max_effective_blocking = std::max(m.max_effective_blocking, *eb);
    effective_blocking_by_job_.erase(job.id());
  }
  job.MarkDropped();
  RetireJob(job);
  protocol_->OnAbortApplied(job);
}

void Simulator::RetireJob(Job& job) {
  dispatch_dirty_ = true;
  PCPDA_CHECK(!job.active());
  const auto it =
      std::find(active_jobs_.begin(), active_jobs_.end(), &job);
  PCPDA_CHECK_MSG(it != active_jobs_.end(),
                  "retiring a job that was not in the active set");
  active_jobs_.erase(it);
  retired_this_tick_.push_back(&job);
}

void Simulator::FastForwardIdleGap() {
  // With no job in flight nothing can happen before the next arrival:
  // deadlines, faults, locks, wait edges and ceilings all belong to
  // active jobs. Emit exactly what the per-tick loop emitted for an idle
  // tick — one idle TickRecord at the (empty-lock-table) ceiling, an
  // idle_ticks credit, and a max_ceiling sample — for every skipped tick.
  Tick next = NextArrivalTick();
  if (next == kNoTick || next > options_.horizon) next = options_.horizon;
  if (next <= tick_) return;
  const Priority ceiling = protocol_->CurrentCeiling();
  blocked_prev_.clear();
  while (tick_ < next) {
    ++metrics_.idle_ticks;
    metrics_.max_ceiling = Max(metrics_.max_ceiling, ceiling);
    if (options_.record_trace) {
      TickRecord record;
      record.tick = tick_;
      record.ceiling = ceiling;
      trace_.AddTick(std::move(record));
    }
    ++tick_;
  }
}

void Simulator::ExecuteTick(Job& job) {
  if (!job.step_admitted()) AdmitStep(job);
  const Step step = job.current_step();
  const bool step_done = job.ExecuteTick();
  metrics_for(job.spec_id()).busy_ticks += 1;
  if (step_done) {
    // The step cursor moved (and early releases / commit may follow).
    dispatch_dirty_ = true;
    CompleteStep(job, step);
    if (job.BodyDone()) Commit(job);
  }
}

void Simulator::RecordTick(const Job* runner, StepKind runner_kind) {
  // Blocking/preemption accounting. blocked_scratch_ becomes the next
  // tick's blocked_prev_ via the swap below, keeping both maps' slots.
  blocked_scratch_.clear();
  for (JobId id : blocked_now_.ids()) {
    const PendingBlock& pb = blocked_now_.at(id);
    const Job* blocked = job(id);
    PCPDA_CHECK(blocked != nullptr);
    blocked_scratch_[id] = pb.note;
    SpecMetrics& m = metrics_for(blocked->spec_id());
    ++m.blocked_ticks;
    if (runner != nullptr &&
        runner->base_priority() < blocked->base_priority()) {
      ++m.effective_blocking_ticks;
      ++effective_blocking_by_job_[id];
    }
    const std::string* prev = blocked_prev_.find(id);
    const bool new_episode = prev == nullptr;
    if (new_episode || *prev != pb.note) {
      // New blocking episode, or the denial reason changed mid-episode
      // (e.g. a ceiling block turning into a wr-guard conflict).
      if (new_episode) {
        if (pb.reason == BlockReason::kCeiling) {
          ++m.ceiling_blocks;
        } else {
          ++m.conflict_blocks;
        }
      }
      if (options_.record_trace) {
        TraceEvent event;
        event.tick = tick_;
        event.kind = TraceKind::kBlock;
        event.job = id;
        event.spec = blocked->spec_id();
        event.instance = blocked->instance();
        event.item = pb.item;
        event.mode = pb.mode;
        event.reason = pb.reason;
        event.others = pb.blockers;
        event.note = pb.note;
        trace_.AddEvent(event);
      }
    }
  }
  blocked_prev_.swap(blocked_scratch_);
  for (const Job* j : active_jobs_) {
    if (runner != nullptr && j->id() == runner->id()) continue;
    if (!blocked_now_.contains(j->id())) {
      ++metrics_for(j->spec_id()).preempted_ticks;
    }
  }

  const Priority ceiling = protocol_->CurrentCeiling();
  metrics_.max_ceiling = Max(metrics_.max_ceiling, ceiling);

  if (!options_.record_trace) return;
  TickRecord record;
  record.tick = tick_;
  record.ceiling = ceiling;
  if (runner != nullptr) {
    record.running_job = runner->id();
    record.running_spec = runner->spec_id();
    record.running_kind = runner_kind;
  }
  for (JobId id : blocked_now_.ids()) {
    const PendingBlock& pb = blocked_now_.at(id);
    const Job* blocked = job(id);
    BlockedSample sample;
    sample.job = id;
    sample.spec = blocked->spec_id();
    sample.item = pb.item;
    sample.mode = pb.mode;
    sample.reason = pb.reason;
    sample.blockers = pb.blockers;
    record.blocked.push_back(std::move(sample));
  }
  trace_.AddTick(std::move(record));
}

void Simulator::AuditNow() {
  if (auditor_ == nullptr) return;
  // The audit scans the active set plus this tick's retirements (so a
  // commit/drop that leaks a lock or a workspace write is caught at
  // retirement time); anything older resolves through scope.lookup.
  std::vector<const Job*> scanned;
  scanned.reserve(active_jobs_.size() + retired_this_tick_.size());
  scanned.insert(scanned.end(), active_jobs_.begin(), active_jobs_.end());
  scanned.insert(scanned.end(), retired_this_tick_.begin(),
                 retired_this_tick_.end());
  std::map<JobId, std::vector<JobId>> blocked;
  for (JobId id : blocked_now_.ids()) {
    blocked[id] = blocked_now_.at(id).blockers;
  }
  AuditScope scope;
  scope.tick = tick_;
  scope.set = set_;
  scope.ceilings = ceilings_;
  scope.protocol = protocol_;
  scope.locks = &lock_table_;
  scope.database = &database_;
  scope.waits = &wait_graph_;
  scope.jobs = &scanned;
  scope.lookup = this;
  scope.blocked = &blocked;
  const std::size_t before = auditor_->report().violations.size();
  auditor_->AuditTick(scope);
  if (options_.record_trace) {
    const auto& violations = auditor_->report().violations;
    for (std::size_t i = before; i < violations.size(); ++i) {
      TraceEvent event;
      event.tick = tick_;
      event.kind = TraceKind::kAuditViolation;
      event.note = violations[i].check + ": " + violations[i].detail;
      trace_.AddEvent(event);
    }
  }
}

SimResult Simulator::Run() {
  PCPDA_CHECK_MSG(!ran_, "Simulator::Run may be called once");
  ran_ = true;
  SimResult result;
  if (options_.horizon <= 0) {
    result.status = Status::InvalidArgument("horizon must be positive");
    return result;
  }
  if (options_.faults.enabled()) {
    Status valid = ValidateFaultConfig(options_.faults, *set_);
    if (!valid.ok()) {
      result.status = valid;
      return result;
    }
    fault_plan_ = std::make_unique<FaultPlan>(options_.faults, set_);
  }
  if (options_.audit) auditor_ = std::make_unique<InvariantAuditor>();
  protocol_->Attach(this);
  trace_.SetCapacity(options_.max_trace_events);
  metrics_.per_spec.assign(static_cast<std::size_t>(set_->size()),
                           SpecMetrics{});
  metrics_.horizon = options_.horizon;

  // Idle gaps can be fast-forwarded only when no per-tick observer is
  // attached: a fault plan may inject arrivals or draw per-tick
  // randomness, and the auditor must inspect every tick.
  const bool fast_forward_idle =
      fault_plan_ == nullptr && auditor_ == nullptr;

  tick_ = 0;
  Status watchdog_status;
  Tick scheduled_ticks = 0;
  while (tick_ < options_.horizon && !halted_) {
    if (options_.cancel != nullptr &&
        options_.cancel->load(std::memory_order_relaxed)) {
      watchdog_status = Status::DeadlineExceeded(StrFormat(
          "run cancelled at tick %lld of %lld",
          static_cast<long long>(tick_),
          static_cast<long long>(options_.horizon)));
      break;
    }
    if (options_.max_sim_ticks > 0 &&
        scheduled_ticks >= options_.max_sim_ticks) {
      watchdog_status = Status::DeadlineExceeded(StrFormat(
          "tick budget %lld exhausted at tick %lld of %lld",
          static_cast<long long>(options_.max_sim_ticks),
          static_cast<long long>(tick_),
          static_cast<long long>(options_.horizon)));
      break;
    }
    ++scheduled_ticks;
    retired_this_tick_.clear();
    ReleaseArrivals();
    CheckDeadlines();
    if (halted_) break;
    ApplyFaults();
    Job* runner;
    if (dispatch_dirty_) {
      runner = ResolveDispatch();
      while (HandleOneDeadlock()) {
        if (halted_) break;
        runner = ResolveDispatch();
      }
      if (halted_) break;
      // The resolution (blocked_now_, wait edges, runner) stays valid
      // until one of the marked mutation points fires; the deadlock scan
      // is covered too — an unchanged wait graph cannot grow a cycle.
      dispatch_dirty_ = false;
      last_runner_ = runner;
    } else {
      runner = last_runner_;
    }
    const StepKind runner_kind =
        (runner != nullptr && !runner->BodyDone())
            ? runner->current_step().kind
            : StepKind::kCompute;
    if (runner != nullptr) {
      ExecuteTick(*runner);
    } else {
      ++metrics_.idle_ticks;
    }
    RecordTick(runner, runner_kind);
    AuditNow();
    ++tick_;
    if (fast_forward_idle && active_jobs_.empty()) FastForwardIdleGap();
  }

  // Jobs still in flight whose deadline lies beyond the horizon never got
  // the chance to miss (or meet) it; MissRatio excludes them.
  for (const Job* pending : active_jobs_) {
    if (!pending->deadline_miss_recorded()) {
      ++metrics_for(pending->spec_id()).pending_at_horizon;
    }
  }

  // Fold leftover per-job blocking maxima into the per-spec metrics.
  for (JobId id : effective_blocking_by_job_.ids()) {
    const Job* j = job(id);
    if (j == nullptr) continue;
    SpecMetrics& m = metrics_for(j->spec_id());
    m.max_effective_blocking =
        std::max(m.max_effective_blocking, effective_blocking_by_job_.at(id));
  }

  if (fault_plan_ != nullptr) {
    metrics_.faults.delayed_arrivals = fault_plan_->delayed_count();
    metrics_.faults.delay_ticks = fault_plan_->delay_ticks();
    metrics_.faults.burst_arrivals = fault_plan_->burst_count();
  }

  result.metrics = std::move(metrics_);
  result.trace = std::move(trace_);
  result.history = std::move(history_);
  result.deadlock_detected = result.metrics.deadlocks > 0;
  if (auditor_ != nullptr) {
    result.audit = auditor_->TakeReport();
    if (!result.audit.ok()) {
      const std::int64_t total =
          static_cast<std::int64_t>(result.audit.violations.size()) +
          result.audit.suppressed;
      result.status = Status::Internal(StrFormat(
          "invariant audit failed: %lld violation(s); first: %s",
          static_cast<long long>(total),
          result.audit.violations.front().DebugString().c_str()));
    }
  }
  // A watchdog abandonment trumps everything else: the run never reached
  // the horizon, so neither the metrics nor the audit verdict is final.
  if (!watchdog_status.ok()) result.status = watchdog_status;
  return result;
}

}  // namespace pcpda
