#ifndef PCPDA_SCHED_METRICS_H_
#define PCPDA_SCHED_METRICS_H_

#include <string>
#include <vector>

#include "common/types.h"
#include "txn/spec.h"

namespace pcpda {

/// Per-spec counters accumulated over one run.
struct SpecMetrics {
  std::int64_t released = 0;
  std::int64_t committed = 0;
  std::int64_t deadline_misses = 0;
  std::int64_t dropped = 0;
  std::int64_t restarts = 0;

  /// CPU ticks executed by instances of the spec.
  Tick busy_ticks = 0;
  /// Ticks an instance spent with a denied lock request.
  Tick blocked_ticks = 0;
  /// The paper's "effective blocking": blocked ticks during which a job of
  /// LOWER base priority occupied the processor.
  Tick effective_blocking_ticks = 0;
  /// Max effective blocking experienced by a single instance.
  Tick max_effective_blocking = 0;
  /// Ticks released-but-not-running because a higher-running-priority job
  /// held the CPU.
  Tick preempted_ticks = 0;

  /// Block events (first tick of each blocking episode) by reason.
  std::int64_t ceiling_blocks = 0;
  std::int64_t conflict_blocks = 0;

  /// Instances still in flight when the horizon ended without a recorded
  /// deadline miss. Their outcome is censored — they never got the chance
  /// to meet or miss their deadline — so MissRatio excludes them from the
  /// denominator.
  std::int64_t pending_at_horizon = 0;

  Tick max_response = 0;
  double total_response = 0.0;
  /// Response time of every committed instance, in commit order.
  std::vector<Tick> responses;

  double MeanResponse() const {
    return committed > 0 ? total_response / static_cast<double>(committed)
                         : 0.0;
  }

  /// The p-quantile (p in [0, 1]) of the committed response times using
  /// the nearest-rank method; 0 when nothing committed.
  Tick ResponsePercentile(double p) const;

  /// All requested quantiles from one scratch buffer: a single copy of
  /// the sample, sorted once when more than two quantiles are asked for
  /// (nth_element per quantile otherwise). Element i answers ps[i];
  /// values are identical to calling ResponsePercentile(ps[i]).
  std::vector<Tick> ResponsePercentiles(const std::vector<double>& ps) const;
};

/// Injected-fault accounting for one run. All zero when no fault plan is
/// configured.
struct FaultMetrics {
  /// kAbort faults applied (job aborted and restarted).
  std::int64_t injected_aborts = 0;
  /// kRestartInCs faults applied (spurious restart mid-critical-section).
  std::int64_t injected_restarts = 0;
  /// Abort/restart faults suppressed because the protocol releases locks
  /// early (undo after early release would be unsound).
  std::int64_t skipped_aborts = 0;
  /// kOverrun faults applied, and the total extra ticks they added.
  std::int64_t overruns = 0;
  Tick overrun_ticks = 0;
  /// Arrivals deferred by kDelayArrival faults, and total ticks deferred.
  std::int64_t delayed_arrivals = 0;
  Tick delay_ticks = 0;
  /// Extra arrivals injected by kBurstArrival faults.
  std::int64_t burst_arrivals = 0;

  std::int64_t TotalInjected() const {
    return injected_aborts + injected_restarts + overruns +
           delayed_arrivals + burst_arrivals;
  }
};

/// Whole-run counters plus the per-spec breakdown.
struct RunMetrics {
  std::vector<SpecMetrics> per_spec;
  Tick horizon = 0;
  Tick idle_ticks = 0;
  std::int64_t deadlocks = 0;
  /// The highest ceiling the protocol ever raised (paper's Max_Sysceil).
  Priority max_ceiling;
  bool halted_on_deadlock = false;
  bool halted_on_miss = false;
  /// Lock requests evaluated by the protocol (Protocol::Decide calls),
  /// including re-evaluations during dispatch fixpoint sweeps. Feeds the
  /// ns-per-lock-decision figure in bench_engine_perf; deliberately absent
  /// from DebugString so golden traces are unaffected.
  std::int64_t lock_decisions = 0;
  FaultMetrics faults;

  std::int64_t TotalReleased() const;
  std::int64_t TotalCommitted() const;
  std::int64_t TotalMisses() const;
  std::int64_t TotalRestarts() const;
  std::int64_t TotalPending() const;
  bool AllDeadlinesMet() const { return TotalMisses() == 0; }
  /// Deadline misses over the instances whose outcome is known: released
  /// minus the censored still-pending-at-horizon jobs. Counting censored
  /// jobs as met deadlines would bias the ratio down on short horizons.
  double MissRatio() const;

  std::string DebugString(const TransactionSet& set) const;
};

}  // namespace pcpda

#endif  // PCPDA_SCHED_METRICS_H_
