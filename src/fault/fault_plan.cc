#include "fault/fault_plan.h"

#include <algorithm>

#include "common/check.h"
#include "common/strings.h"

namespace pcpda {

const char* ToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kAbort:
      return "abort";
    case FaultKind::kRestartInCs:
      return "restart";
    case FaultKind::kOverrun:
      return "overrun";
    case FaultKind::kDelayArrival:
      return "delay";
    case FaultKind::kBurstArrival:
      return "burst";
  }
  return "unknown";
}

std::string FaultSpec::DebugString() const {
  std::string out = ToString(kind);
  out += spec == kInvalidSpec ? " *" : StrFormat(" spec=%d", spec);
  if (at != kNoTick) out += StrFormat(" at=%lld", static_cast<long long>(at));
  if (probability > 0.0) out += StrFormat(" prob=%.3f", probability);
  if (kind == FaultKind::kOverrun || kind == FaultKind::kDelayArrival) {
    out += StrFormat(" extra=%lld", static_cast<long long>(extra));
  }
  if (kind == FaultKind::kBurstArrival) out += StrFormat(" count=%d", count);
  return out;
}

Status ValidateFaultConfig(const FaultConfig& config,
                           const TransactionSet& set) {
  for (std::size_t i = 0; i < config.faults.size(); ++i) {
    const FaultSpec& fault = config.faults[i];
    const std::string where = StrFormat("fault #%d (%s)",
                                        static_cast<int>(i),
                                        ToString(fault.kind));
    const bool has_at = fault.at != kNoTick;
    const bool has_prob = fault.probability > 0.0;
    if (has_at == has_prob) {
      return Status::InvalidArgument(
          where + ": exactly one of at/probability must be set");
    }
    if (has_at && fault.at < 0) {
      return Status::InvalidArgument(where + ": at must be >= 0");
    }
    if (fault.probability < 0.0 || fault.probability > 1.0) {
      return Status::InvalidArgument(
          where + ": probability must be in [0, 1]");
    }
    if (fault.spec != kInvalidSpec &&
        (fault.spec < 0 || fault.spec >= set.size())) {
      return Status::InvalidArgument(
          where + StrFormat(": spec %d out of range", fault.spec));
    }
    if ((fault.kind == FaultKind::kOverrun ||
         fault.kind == FaultKind::kDelayArrival) &&
        fault.extra <= 0) {
      return Status::InvalidArgument(where + ": extra must be positive");
    }
    if (fault.kind == FaultKind::kBurstArrival && fault.count <= 0) {
      return Status::InvalidArgument(where + ": count must be positive");
    }
  }
  return Status::Ok();
}

FaultPlan::FaultPlan(const FaultConfig& config, const TransactionSet* set)
    : config_(config), set_(set), rng_(config.seed) {
  PCPDA_CHECK(set != nullptr);
}

std::vector<Arrival> FaultPlan::TransformArrivals(Tick tick,
                                                  std::vector<Arrival> due) {
  // Re-emit arrivals whose delay expires now, ahead of today's releases so
  // instance order stays close to release order.
  std::vector<Arrival> out;
  if (auto it = delayed_.find(tick); it != delayed_.end()) {
    out = std::move(it->second);
    delayed_.erase(it);
  }
  for (Arrival& arrival : due) {
    bool delayed = false;
    for (FaultSpec& fault : config_.faults) {
      if (fault.kind != FaultKind::kDelayArrival) continue;
      if (fault.spec != kInvalidSpec && fault.spec != arrival.spec) continue;
      bool fires = false;
      if (fault.at != kNoTick) {
        if (tick >= fault.at) {
          fires = true;
          fault.at = kNoTick;            // one-shot: disarm
          fault.probability = 0.0;       // and keep the trigger unset
        }
      } else {
        fires = rng_.Bernoulli(fault.probability);
      }
      if (!fires) continue;
      const Tick delay = rng_.UniformInt(1, fault.extra);
      Arrival moved = arrival;
      moved.tick = tick + delay;
      delayed_[tick + delay].push_back(moved);
      delay_ticks_ += delay;
      ++delayed_count_;
      delayed = true;
      break;
    }
    if (!delayed) out.push_back(arrival);
  }
  for (FaultSpec& fault : config_.faults) {
    if (fault.kind != FaultKind::kBurstArrival) continue;
    bool fires = false;
    if (fault.at != kNoTick) {
      if (tick >= fault.at) {
        fires = true;
        fault.at = kNoTick;
        fault.probability = 0.0;
      }
    } else {
      fires = rng_.Bernoulli(fault.probability);
    }
    if (!fires) continue;
    // A burst of the target spec (or of every spec when unscoped).
    std::vector<SpecId> targets;
    if (fault.spec != kInvalidSpec) {
      targets.push_back(fault.spec);
    } else {
      for (SpecId s = 0; s < set_->size(); ++s) targets.push_back(s);
    }
    for (SpecId spec : targets) {
      for (int i = 0; i < fault.count; ++i) {
        Arrival extra;
        extra.tick = tick;
        extra.spec = spec;
        extra.instance = kBurstInstanceBase + burst_seq_[spec]++;
        ++burst_count_;
        out.push_back(extra);
      }
    }
  }
  return out;
}

std::vector<JobFault> FaultPlan::JobFaultsAt(
    Tick tick, const std::vector<const Job*>& active,
    const std::map<JobId, bool>& holds_lock) {
  std::vector<JobFault> out;
  for (FaultSpec& fault : config_.faults) {
    if (fault.kind != FaultKind::kAbort &&
        fault.kind != FaultKind::kRestartInCs &&
        fault.kind != FaultKind::kOverrun) {
      continue;
    }
    const bool one_shot = fault.at != kNoTick;
    if (one_shot) {
      if (tick < fault.at) continue;
    } else if (!rng_.Bernoulli(fault.probability)) {
      continue;
    }
    // Lowest-id eligible job of the target spec. One-shot faults stay
    // armed until a target exists (first eligible tick >= at).
    const Job* target = nullptr;
    for (const Job* job : active) {
      if (fault.spec != kInvalidSpec && job->spec_id() != fault.spec) {
        continue;
      }
      if (fault.kind == FaultKind::kOverrun && job->BodyDone()) continue;
      if (fault.kind == FaultKind::kRestartInCs) {
        auto it = holds_lock.find(job->id());
        if (it == holds_lock.end() || !it->second) continue;
      }
      target = job;
      break;
    }
    if (target == nullptr) continue;
    if (one_shot) {
      fault.at = kNoTick;
      fault.probability = 0.0;
    }
    JobFault applied;
    applied.kind = fault.kind;
    applied.job = target->id();
    applied.extra = fault.kind == FaultKind::kOverrun ? fault.extra : 0;
    applied.note = StrFormat("fault:%s", ToString(fault.kind));
    out.push_back(std::move(applied));
  }
  return out;
}

}  // namespace pcpda
