#ifndef PCPDA_FAULT_FAULT_PLAN_H_
#define PCPDA_FAULT_FAULT_PLAN_H_

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "sim/calendar.h"
#include "txn/job.h"
#include "txn/spec.h"

namespace pcpda {

/// The kinds of adversity the fault injector can apply. Each targets the
/// cleanup machinery the paper's proofs assume works (lock release,
/// workspace discard, ceiling restoration, inheritance unwinding) rather
/// than the happy path.
enum class FaultKind : std::uint8_t {
  /// Abort (restart) an active job of the target spec.
  kAbort,
  /// Abort an active job of the target spec, but only while it holds at
  /// least one lock — a spurious restart mid-critical-section.
  kRestartInCs,
  /// Extend the target job's current step by `extra` ticks (WCET overrun).
  kOverrun,
  /// Delay a due arrival of the target spec by 1..`extra` ticks (release
  /// jitter).
  kDelayArrival,
  /// Inject `count` extra releases of the target spec (arrival burst).
  kBurstArrival,
};

const char* ToString(FaultKind kind);

/// One fault source. Fires either once at the first eligible tick >= `at`
/// (deterministic) or independently each tick with `probability` (seeded).
/// Exactly one of the two triggers must be set.
struct FaultSpec {
  FaultKind kind = FaultKind::kAbort;
  /// Target spec; kInvalidSpec targets any spec (the lowest-id eligible
  /// job / every due arrival).
  SpecId spec = kInvalidSpec;
  /// One-shot trigger tick; kNoTick when probability-driven.
  Tick at = kNoTick;
  /// Per-tick firing probability; 0 when `at`-driven.
  double probability = 0.0;
  /// kOverrun: extra ticks added to the current step.
  /// kDelayArrival: maximum delay in ticks.
  Tick extra = 1;
  /// kBurstArrival: number of extra releases injected per firing.
  int count = 1;

  std::string DebugString() const;
};

/// A deterministic, seeded plan of faults for one run. Built from
/// SimulatorOptions or a `faults ... end` block in the .scn DSL.
struct FaultConfig {
  std::uint64_t seed = 1;
  std::vector<FaultSpec> faults;

  bool enabled() const { return !faults.empty(); }
};

/// Validates a config against a transaction set: triggers well-formed
/// (exactly one of at/probability), probability in [0, 1], positive
/// extra/count where used, spec ids in range.
Status ValidateFaultConfig(const FaultConfig& config,
                           const TransactionSet& set);

/// A fault to apply to a specific job this tick.
struct JobFault {
  FaultKind kind = FaultKind::kAbort;
  JobId job = kInvalidJob;
  /// kOverrun: ticks to add to the current step.
  Tick extra = 0;
  /// Trace annotation, e.g. "fault:abort".
  std::string note;
};

/// The runtime side of a FaultConfig: owns the seeded RNG and the queue of
/// delayed arrivals, and answers the simulator's two per-tick questions —
/// "what happens to these arrivals?" and "which jobs suffer a fault?".
/// Deterministic: the same config and workload replay identically.
class FaultPlan {
 public:
  /// `set` must outlive the plan. The config must validate.
  FaultPlan(const FaultConfig& config, const TransactionSet* set);

  bool enabled() const { return config_.enabled(); }

  /// Applies arrival faults to the arrivals due at `tick`: delayed
  /// arrivals are withheld and re-emitted at their later tick (original
  /// instance number preserved); burst faults append fresh arrivals whose
  /// instance numbers start at kBurstInstanceBase to stay disjoint from
  /// the calendar's.
  std::vector<Arrival> TransformArrivals(Tick tick,
                                         std::vector<Arrival> due);

  /// The job faults firing at `tick` against `active` (live jobs in id
  /// order). kAbort picks the lowest-id active job of the target spec;
  /// kRestartInCs additionally requires `holds_lock` for that job.
  std::vector<JobFault> JobFaultsAt(
      Tick tick, const std::vector<const Job*>& active,
      const std::map<JobId, bool>& holds_lock);

  /// Arrival-fault accounting so far (for metrics).
  Tick delay_ticks() const { return delay_ticks_; }
  std::int64_t delayed_count() const { return delayed_count_; }
  std::int64_t burst_count() const { return burst_count_; }

  /// Instance numbers of burst-injected arrivals start here.
  static constexpr int kBurstInstanceBase = 1 << 20;

 private:
  bool Fires(FaultSpec& fault, Tick tick);

  FaultConfig config_;
  const TransactionSet* set_;
  Rng rng_;
  /// Delayed arrivals keyed by their new release tick.
  std::map<Tick, std::vector<Arrival>> delayed_;
  /// Per-spec sequence for burst instance numbering.
  std::map<SpecId, int> burst_seq_;
  Tick delay_ticks_ = 0;
  std::int64_t delayed_count_ = 0;
  std::int64_t burst_count_ = 0;
};

}  // namespace pcpda

#endif  // PCPDA_FAULT_FAULT_PLAN_H_
