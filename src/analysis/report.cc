#include "analysis/report.h"

#include <vector>

#include "analysis/rm_bound.h"
#include "common/strings.h"

namespace pcpda {
namespace {

/// JSON string escaping (same rules as the lint/campaign renderers):
/// names are plain ASCII by construction, but escape the structural
/// characters so arbitrary scenario names cannot corrupt the framing.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Prefixes every line of `text` with `pad` spaces.
std::string Indent(const std::string& text, int pad) {
  const std::string prefix(static_cast<std::size_t>(pad), ' ');
  std::string out = prefix;
  for (char c : text) {
    out += c;
    if (c == '\n') out += prefix;
  }
  return out;
}

}  // namespace

std::string BlockingComparisonTable(const TransactionSet& set) {
  const auto kinds = AnalyzableProtocolKinds();
  std::vector<BlockingAnalysis> analyses;
  analyses.reserve(kinds.size());
  for (ProtocolKind kind : kinds) {
    analyses.push_back(ComputeBlocking(set, kind));
  }

  std::vector<std::string> lines;
  std::string header = PadRight("txn", 8) + PadRight("C_i", 8) +
                       PadRight("Pd_i", 8);
  for (ProtocolKind kind : kinds) {
    header += PadRight(StrFormat("B(%s)", ToString(kind)), 12);
  }
  lines.push_back(header);
  for (SpecId i = 0; i < set.size(); ++i) {
    const TransactionSpec& spec = set.spec(i);
    std::string row =
        PadRight(spec.name, 8) +
        PadRight(StrFormat("%lld",
                           static_cast<long long>(spec.ExecutionTime())),
                 8) +
        PadRight(spec.period > 0
                     ? StrFormat("%lld", static_cast<long long>(spec.period))
                     : std::string("-"),
                 8);
    for (const BlockingAnalysis& analysis : analyses) {
      row += PadRight(
          StrFormat("%lld", static_cast<long long>(analysis.B(i))), 12);
    }
    lines.push_back(row);
  }
  return Join(lines, "\n");
}

std::string SchedulabilityReport(const TransactionSet& set) {
  std::vector<std::string> sections;
  sections.push_back("== worst-case blocking (Section 9) ==");
  sections.push_back(BlockingComparisonTable(set));
  for (ProtocolKind kind : AnalyzableProtocolKinds()) {
    const BlockingAnalysis blocking = ComputeBlocking(set, kind);
    sections.push_back(
        StrFormat("== %s: Liu-Layland sufficient test ==", ToString(kind)));
    const auto ll = LiuLaylandTest(set, blocking.AllB());
    sections.push_back(ll.ok() ? ll.value().DebugString(set)
                               : ll.status().ToString());
    sections.push_back(
        StrFormat("== %s: hyperbolic bound ==", ToString(kind)));
    const auto hb = HyperbolicTest(set, blocking.AllB());
    sections.push_back(hb.ok() ? hb.value().DebugString(set)
                               : hb.status().ToString());
    sections.push_back(
        StrFormat("== %s: response-time analysis ==", ToString(kind)));
    const auto rta = ResponseTimeAnalysis(set, blocking.AllB());
    sections.push_back(rta.ok() ? rta.value().DebugString(set)
                                : rta.status().ToString());
  }
  return Join(sections, "\n");
}

bool AnalysisReport::AnyVerdict(SchedVerdict verdict) const {
  for (const ProtocolAnalysis& pa : per_protocol) {
    if (pa.sched.verdict == verdict) return true;
  }
  return false;
}

AnalysisReport AnalyzeSet(const TransactionSet& set,
                          const std::vector<ProtocolKind>& kinds) {
  AnalysisReport report;
  report.per_protocol.reserve(kinds.size());
  for (ProtocolKind kind : kinds) {
    ProtocolAnalysis pa;
    pa.protocol = kind;
    pa.blocking = ComputeBlocking(set, kind);
    pa.sched = AnalyzeResponseTimes(set, pa.blocking);
    report.per_protocol.push_back(std::move(pa));
  }
  return report;
}

std::string RenderAnalysisText(const std::string& file,
                               const TransactionSet& set,
                               const AnalysisReport& report) {
  std::vector<std::string> lines;
  for (const ProtocolAnalysis& pa : report.per_protocol) {
    lines.push_back(StrFormat("%s: %s: %s", file.c_str(),
                              ToString(pa.protocol),
                              ToString(pa.sched.verdict)));
    lines.push_back(Indent(pa.blocking.DebugString(set), 2));
    lines.push_back(Indent(pa.sched.DebugString(set), 2));
  }
  return Join(lines, "\n") + "\n";
}

std::string RenderAnalysisJson(const std::string& file,
                               const TransactionSet& set,
                               const AnalysisReport& report) {
  std::vector<std::string> protocol_entries;
  for (const ProtocolAnalysis& pa : report.per_protocol) {
    std::vector<std::string> spec_entries;
    for (SpecId i = 0; i < set.size(); ++i) {
      const SpecBlocking& sb = pa.blocking.ForSpec(i);
      const SpecSchedResult& sr =
          pa.sched.per_spec[static_cast<std::size_t>(i)];
      std::vector<std::string> bts_names;
      for (SpecId l : sb.bts) {
        bts_names.push_back(
            StrFormat("\"%s\"", JsonEscape(set.spec(l).name).c_str()));
      }
      std::vector<std::string> restarts;
      for (const RestartSource& source : sb.restart_sources) {
        restarts.push_back(StrFormat(
            "{\"spec\": \"%s\", \"per_release\": %d}",
            JsonEscape(set.spec(source.spec).name).c_str(),
            source.per_release));
      }
      const std::string b_text =
          sb.bounded
              ? StrFormat("%lld", static_cast<long long>(sb.worst_blocking))
              : std::string("null");
      const std::string response_text =
          sr.response == kNoTick
              ? std::string("null")
              : StrFormat("%lld", static_cast<long long>(sr.response));
      spec_entries.push_back(StrFormat(
          "        {\"name\": \"%s\", \"B\": %s, \"response\": %s, "
          "\"verdict\": \"%s\", \"bts\": [%s], \"restarts\": [%s]}",
          JsonEscape(set.spec(i).name).c_str(), b_text.c_str(),
          response_text.c_str(), ToString(sr.verdict),
          Join(bts_names, ", ").c_str(), Join(restarts, ", ").c_str()));
    }
    protocol_entries.push_back(StrFormat(
        "    {\"protocol\": \"%s\", \"verdict\": \"%s\", "
        "\"bounded\": %s,\n      \"specs\": [\n%s\n      ]}",
        ToString(pa.protocol), ToString(pa.sched.verdict),
        pa.blocking.bounded ? "true" : "false",
        Join(spec_entries, ",\n").c_str()));
  }
  return StrFormat("{\n  \"file\": \"%s\",\n  \"protocols\": [\n%s\n  ]\n}",
                   JsonEscape(file).c_str(),
                   Join(protocol_entries, ",\n").c_str());
}

}  // namespace pcpda
