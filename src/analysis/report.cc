#include "analysis/report.h"

#include <vector>

#include "analysis/blocking.h"
#include "analysis/response_time.h"
#include "analysis/rm_bound.h"
#include "common/strings.h"
#include "protocols/factory.h"

namespace pcpda {

std::string BlockingComparisonTable(const TransactionSet& set) {
  const auto kinds = AnalyzableProtocolKinds();
  std::vector<BlockingAnalysis> analyses;
  analyses.reserve(kinds.size());
  for (ProtocolKind kind : kinds) {
    analyses.push_back(ComputeBlocking(set, kind));
  }

  std::vector<std::string> lines;
  std::string header = PadRight("txn", 8) + PadRight("C_i", 8) +
                       PadRight("Pd_i", 8);
  for (ProtocolKind kind : kinds) {
    header += PadRight(StrFormat("B(%s)", ToString(kind)), 12);
  }
  lines.push_back(header);
  for (SpecId i = 0; i < set.size(); ++i) {
    const TransactionSpec& spec = set.spec(i);
    std::string row =
        PadRight(spec.name, 8) +
        PadRight(StrFormat("%lld",
                           static_cast<long long>(spec.ExecutionTime())),
                 8) +
        PadRight(spec.period > 0
                     ? StrFormat("%lld", static_cast<long long>(spec.period))
                     : std::string("-"),
                 8);
    for (const BlockingAnalysis& analysis : analyses) {
      row += PadRight(
          StrFormat("%lld", static_cast<long long>(analysis.B(i))), 12);
    }
    lines.push_back(row);
  }
  return Join(lines, "\n");
}

std::string SchedulabilityReport(const TransactionSet& set) {
  std::vector<std::string> sections;
  sections.push_back("== worst-case blocking (Section 9) ==");
  sections.push_back(BlockingComparisonTable(set));
  for (ProtocolKind kind : AnalyzableProtocolKinds()) {
    const BlockingAnalysis blocking = ComputeBlocking(set, kind);
    sections.push_back(
        StrFormat("== %s: Liu-Layland sufficient test ==", ToString(kind)));
    const auto ll = LiuLaylandTest(set, blocking.AllB());
    sections.push_back(ll.ok() ? ll.value().DebugString(set)
                               : ll.status().ToString());
    sections.push_back(
        StrFormat("== %s: hyperbolic bound ==", ToString(kind)));
    const auto hb = HyperbolicTest(set, blocking.AllB());
    sections.push_back(hb.ok() ? hb.value().DebugString(set)
                               : hb.status().ToString());
    sections.push_back(
        StrFormat("== %s: response-time analysis ==", ToString(kind)));
    const auto rta = ResponseTimeAnalysis(set, blocking.AllB());
    sections.push_back(rta.ok() ? rta.value().DebugString(set)
                                : rta.status().ToString());
  }
  return Join(sections, "\n");
}

}  // namespace pcpda
