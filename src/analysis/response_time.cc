#include "analysis/response_time.h"

#include "common/strings.h"

namespace pcpda {

StatusOr<ResponseTimeResult> ResponseTimeAnalysis(
    const TransactionSet& set, const std::vector<Tick>& b) {
  if (b.size() != static_cast<std::size_t>(set.size())) {
    return Status::InvalidArgument(
        "blocking vector size does not match the transaction set");
  }
  Tick previous_period = 0;
  for (SpecId i = 0; i < set.size(); ++i) {
    if (set.spec(i).period <= 0) {
      return Status::FailedPrecondition(
          set.spec(i).name + ": response-time analysis requires periods");
    }
    if (set.spec(i).period < previous_period) {
      return Status::FailedPrecondition(
          "set is not rate-monotonically ordered");
    }
    previous_period = set.spec(i).period;
  }

  ResponseTimeResult result;
  result.schedulable = true;
  for (SpecId i = 0; i < set.size(); ++i) {
    const TransactionSpec& spec = set.spec(i);
    const Tick deadline = set.RelativeDeadline(i);
    const Tick c_i = spec.ExecutionTime();
    Tick r = c_i + b[static_cast<std::size_t>(i)];
    ResponseTimeSpecResult sr;
    for (;;) {
      Tick next = c_i + b[static_cast<std::size_t>(i)];
      for (SpecId j = 0; j < i; ++j) {
        const Tick pd_j = set.spec(j).period;
        next += ((r + pd_j - 1) / pd_j) * set.spec(j).ExecutionTime();
      }
      if (next == r) break;
      r = next;
      if (r > deadline) break;  // diverged past the deadline
    }
    if (r > deadline) {
      sr.response = kNoTick;
      sr.schedulable = false;
    } else {
      sr.response = r;
      sr.schedulable = true;
    }
    result.schedulable = result.schedulable && sr.schedulable;
    result.per_spec.push_back(sr);
  }
  return result;
}

std::string ResponseTimeResult::DebugString(
    const TransactionSet& set) const {
  std::vector<std::string> lines;
  for (SpecId i = 0; i < set.size(); ++i) {
    const ResponseTimeSpecResult& r =
        per_spec[static_cast<std::size_t>(i)];
    if (r.schedulable) {
      lines.push_back(StrFormat("%s: R=%lld (D=%lld) OK",
                                set.spec(i).name.c_str(),
                                static_cast<long long>(r.response),
                                static_cast<long long>(
                                    set.RelativeDeadline(i))));
    } else {
      lines.push_back(StrFormat("%s: R > D=%lld FAIL",
                                set.spec(i).name.c_str(),
                                static_cast<long long>(
                                    set.RelativeDeadline(i))));
    }
  }
  lines.push_back(std::string("overall: ") +
                  (schedulable ? "schedulable" : "NOT schedulable"));
  return Join(lines, "\n");
}

}  // namespace pcpda
