#include "analysis/response_time.h"

#include "common/check.h"
#include "common/strings.h"

namespace pcpda {

StatusOr<ResponseTimeResult> ResponseTimeAnalysis(
    const TransactionSet& set, const std::vector<Tick>& b) {
  if (b.size() != static_cast<std::size_t>(set.size())) {
    return Status::InvalidArgument(
        "blocking vector size does not match the transaction set");
  }
  Tick previous_period = 0;
  for (SpecId i = 0; i < set.size(); ++i) {
    if (set.spec(i).period <= 0) {
      return Status::FailedPrecondition(
          set.spec(i).name + ": response-time analysis requires periods");
    }
    if (set.spec(i).period < previous_period) {
      return Status::FailedPrecondition(
          "set is not rate-monotonically ordered");
    }
    previous_period = set.spec(i).period;
  }

  ResponseTimeResult result;
  result.schedulable = true;
  for (SpecId i = 0; i < set.size(); ++i) {
    const TransactionSpec& spec = set.spec(i);
    const Tick deadline = set.RelativeDeadline(i);
    const Tick c_i = spec.ExecutionTime();
    Tick r = c_i + b[static_cast<std::size_t>(i)];
    ResponseTimeSpecResult sr;
    for (;;) {
      Tick next = c_i + b[static_cast<std::size_t>(i)];
      for (SpecId j = 0; j < i; ++j) {
        const Tick pd_j = set.spec(j).period;
        next += ((r + pd_j - 1) / pd_j) * set.spec(j).ExecutionTime();
      }
      if (next == r) break;
      r = next;
      if (r > deadline) break;  // diverged past the deadline
    }
    if (r > deadline) {
      sr.response = kNoTick;
      sr.schedulable = false;
    } else {
      sr.response = r;
      sr.schedulable = true;
    }
    result.schedulable = result.schedulable && sr.schedulable;
    result.per_spec.push_back(sr);
  }
  return result;
}

std::string ResponseTimeResult::DebugString(
    const TransactionSet& set) const {
  std::vector<std::string> lines;
  for (SpecId i = 0; i < set.size(); ++i) {
    const ResponseTimeSpecResult& r =
        per_spec[static_cast<std::size_t>(i)];
    if (r.schedulable) {
      lines.push_back(StrFormat("%s: R=%lld (D=%lld) OK",
                                set.spec(i).name.c_str(),
                                static_cast<long long>(r.response),
                                static_cast<long long>(
                                    set.RelativeDeadline(i))));
    } else {
      lines.push_back(StrFormat("%s: R > D=%lld FAIL",
                                set.spec(i).name.c_str(),
                                static_cast<long long>(
                                    set.RelativeDeadline(i))));
    }
  }
  lines.push_back(std::string("overall: ") +
                  (schedulable ? "schedulable" : "NOT schedulable"));
  return Join(lines, "\n");
}

const char* ToString(SchedVerdict verdict) {
  switch (verdict) {
    case SchedVerdict::kSchedulable:
      return "schedulable";
    case SchedVerdict::kUnschedulable:
      return "unschedulable";
    case SchedVerdict::kUnknown:
      return "unknown";
  }
  return "unknown";
}

SchedAnalysis AnalyzeResponseTimes(const TransactionSet& set,
                                   const BlockingAnalysis& blocking) {
  PCPDA_CHECK_MSG(blocking.per_spec.size() ==
                      static_cast<std::size_t>(set.size()),
                  "blocking analysis does not match the transaction set");
  SchedAnalysis out;
  out.per_spec.resize(static_cast<std::size_t>(set.size()));

  bool periodic = set.size() > 0;
  for (SpecId i = 0; i < set.size(); ++i) {
    if (set.spec(i).period <= 0) periodic = false;
  }
  if (!periodic) return out;  // all verdicts stay kUnknown

  bool any_unschedulable = false;
  bool all_schedulable = true;
  // True while every higher-priority spec earned kSchedulable: only then
  // is the ceil(R/Pd) interference term (no carry-in backlog) sound for
  // the current spec.
  bool claim_sound = true;
  // Worst-case CPU demand one release of each spec can impose on lower
  // priorities: C_j plus its own abort re-executions. A restarting
  // higher spec consumes more than C_j per release, so interference
  // terms must use this, not the bare execution time. Only read for
  // specs that earned kSchedulable (the cascade suppresses claims
  // otherwise), so the value after a diverged fixpoint is irrelevant.
  std::vector<Tick> demand(static_cast<std::size_t>(set.size()), 0);
  for (SpecId i = 0; i < set.size(); ++i) {
    SpecSchedResult& sr = out.per_spec[static_cast<std::size_t>(i)];
    const SpecBlocking& sb = blocking.ForSpec(i);
    const Tick c_i = set.spec(i).ExecutionTime();
    demand[static_cast<std::size_t>(i)] = c_i;
    if (!sb.bounded) {
      all_schedulable = false;
      claim_sound = false;
      continue;  // kUnknown: no finite blocking term exists
    }
    const Tick deadline = set.RelativeDeadline(i);
    const Tick b_i = sb.worst_blocking;
    Tick r = c_i + b_i;
    Tick aborts = 0;
    for (;;) {
      Tick next = c_i + b_i;
      for (SpecId j = 0; j < i; ++j) {
        const Tick pd_j = set.spec(j).period;
        next += ((r + pd_j - 1) / pd_j) *
                demand[static_cast<std::size_t>(j)];
      }
      aborts = 0;
      for (const RestartSource& source : sb.restart_sources) {
        const Tick pd_s = set.spec(source.spec).period;
        const Tick activations = (r + pd_s - 1) / pd_s + 1;  // + carry-in
        aborts += activations * source.per_release;
      }
      // Each abort wastes up to a full re-execution plus a fresh
      // blocking episode on the retry.
      next += aborts * (c_i + b_i);
      if (next == r) break;
      r = next;
      if (r > deadline) break;  // diverged past the deadline
    }
    if (r > deadline) {
      sr.response = kNoTick;
      sr.verdict = SchedVerdict::kUnschedulable;
      any_unschedulable = true;
    } else {
      sr.response = r;
      sr.verdict = claim_sound ? SchedVerdict::kSchedulable
                               : SchedVerdict::kUnknown;
      demand[static_cast<std::size_t>(i)] = c_i + aborts * c_i;
    }
    if (sr.verdict != SchedVerdict::kSchedulable) {
      all_schedulable = false;
      claim_sound = false;
    }
  }
  out.verdict = any_unschedulable ? SchedVerdict::kUnschedulable
               : all_schedulable  ? SchedVerdict::kSchedulable
                                  : SchedVerdict::kUnknown;
  return out;
}

std::string SchedAnalysis::DebugString(const TransactionSet& set) const {
  std::vector<std::string> lines;
  for (SpecId i = 0; i < set.size(); ++i) {
    const SpecSchedResult& r = per_spec[static_cast<std::size_t>(i)];
    const Tick deadline = set.RelativeDeadline(i);
    std::string response_text =
        r.response == kNoTick
            ? std::string("-")
            : StrFormat("%lld", static_cast<long long>(r.response));
    std::string deadline_text =
        deadline == kNoTick
            ? std::string("-")
            : StrFormat("%lld", static_cast<long long>(deadline));
    lines.push_back(StrFormat("%s: R=%s (D=%s) %s",
                              set.spec(i).name.c_str(),
                              response_text.c_str(), deadline_text.c_str(),
                              ToString(r.verdict)));
  }
  lines.push_back(std::string("overall: ") + ToString(verdict));
  return Join(lines, "\n");
}

}  // namespace pcpda
