#ifndef PCPDA_ANALYSIS_RM_BOUND_H_
#define PCPDA_ANALYSIS_RM_BOUND_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "txn/spec.h"

namespace pcpda {

/// Verdict of the Liu–Layland style sufficient test of Section 9 for one
/// transaction:
///
///   C_1/Pd_1 + ... + C_i/Pd_i + B_i/Pd_i  <=  i (2^(1/i) - 1)
struct RmBoundSpecResult {
  double utilization_sum = 0.0;  // sum of C_j/Pd_j for j <= i
  double blocking_term = 0.0;    // B_i/Pd_i
  double bound = 0.0;            // i(2^(1/i)-1)
  bool schedulable = false;
};

struct RmBoundResult {
  std::vector<RmBoundSpecResult> per_spec;
  bool schedulable = false;

  std::string DebugString(const TransactionSet& set) const;
};

/// Runs the Section-9 schedulability condition on a fully periodic,
/// rate-monotonically ordered set with per-spec worst-case blocking `b`
/// (b.size() == set.size()). Fails on one-shot specs or on a set not
/// ordered by non-decreasing period.
StatusOr<RmBoundResult> LiuLaylandTest(const TransactionSet& set,
                                       const std::vector<Tick>& b);

/// i (2^(1/i) - 1), the RM utilization bound for i transactions (i >= 1).
double RmUtilizationBound(int i);

/// Verdict of the hyperbolic bound (Bini & Buttazzo; extension — tighter
/// than Liu–Layland) with the blocking term folded additively into the
/// transaction under test, which preserves dominance over the Liu–Layland
/// condition with blocking:
///
///   prod_{j < i} (C_j/Pd_j + 1) * (C_i/Pd_i + B_i/Pd_i + 1)  <=  2
struct HyperbolicSpecResult {
  /// The tested left-hand side for this transaction.
  double product = 0.0;
  /// The i-th factor: C_i/Pd_i + B_i/Pd_i + 1.
  double blocking_factor = 0.0;
  bool schedulable = false;
};

struct HyperbolicResult {
  std::vector<HyperbolicSpecResult> per_spec;
  bool schedulable = false;

  std::string DebugString(const TransactionSet& set) const;
};

/// Runs the hyperbolic test on a fully periodic, rate-monotonically
/// ordered set with per-spec worst-case blocking `b`.
StatusOr<HyperbolicResult> HyperbolicTest(const TransactionSet& set,
                                          const std::vector<Tick>& b);

}  // namespace pcpda

#endif  // PCPDA_ANALYSIS_RM_BOUND_H_
