#ifndef PCPDA_ANALYSIS_REPORT_H_
#define PCPDA_ANALYSIS_REPORT_H_

#include <string>

#include "txn/spec.h"

namespace pcpda {

/// A text table comparing BTS_i/B_i across the analyzable protocols — the
/// Section-9 comparison the paper makes between PCP-DA and RW-PCP.
std::string BlockingComparisonTable(const TransactionSet& set);

/// A full offline schedulability report: per-protocol B_i, the
/// Liu–Layland verdicts and the response-time verdicts. Requires a fully
/// periodic set.
std::string SchedulabilityReport(const TransactionSet& set);

}  // namespace pcpda

#endif  // PCPDA_ANALYSIS_REPORT_H_
