#ifndef PCPDA_ANALYSIS_REPORT_H_
#define PCPDA_ANALYSIS_REPORT_H_

#include <string>
#include <vector>

#include "analysis/blocking.h"
#include "analysis/response_time.h"
#include "protocols/factory.h"
#include "txn/spec.h"

namespace pcpda {

/// A text table comparing BTS_i/B_i across the analyzable protocols — the
/// Section-9 comparison the paper makes between PCP-DA and RW-PCP.
std::string BlockingComparisonTable(const TransactionSet& set);

/// A full offline schedulability report: per-protocol B_i, the
/// Liu–Layland verdicts and the response-time verdicts. Requires a fully
/// periodic set.
std::string SchedulabilityReport(const TransactionSet& set);

/// Blocking bounds plus the schedulability verdict under one protocol.
struct ProtocolAnalysis {
  ProtocolKind protocol = ProtocolKind::kPcpDa;
  BlockingAnalysis blocking;
  SchedAnalysis sched;
};

/// The machine-consumable analysis of one transaction set across a list
/// of protocols — the payload behind `pcpda_analyze` and the campaign
/// analysis pass.
struct AnalysisReport {
  std::vector<ProtocolAnalysis> per_protocol;

  /// True iff some analyzed protocol carries the given verdict.
  bool AnyVerdict(SchedVerdict verdict) const;
};

/// Runs ComputeBlocking + AnalyzeResponseTimes for each requested kind.
/// Unbounded kinds (2PL-PI) are legal inputs: their specs come back
/// `bounded = false` with kUnknown verdicts.
AnalysisReport AnalyzeSet(const TransactionSet& set,
                          const std::vector<ProtocolKind>& kinds);

/// Human-readable rendering, one block per protocol.
std::string RenderAnalysisText(const std::string& file,
                               const TransactionSet& set,
                               const AnalysisReport& report);

/// One JSON object per file:
///   {"file": ..., "protocols": [{"protocol": ..., "verdict": ...,
///    "specs": [{"name": ..., "B": <int|null>, "response": <int|null>,
///               "verdict": ..., "bts": [...], "restarts": [...]}]}]}
std::string RenderAnalysisJson(const std::string& file,
                               const TransactionSet& set,
                               const AnalysisReport& report);

}  // namespace pcpda

#endif  // PCPDA_ANALYSIS_REPORT_H_
