#ifndef PCPDA_ANALYSIS_BLOCKING_H_
#define PCPDA_ANALYSIS_BLOCKING_H_

#include <string>
#include <vector>

#include "common/types.h"
#include "db/ceilings.h"
#include "protocols/factory.h"
#include "txn/spec.h"

namespace pcpda {

/// A higher-priority spec whose activity can force T_i to restart
/// (2PL-HP lock-conflict aborts, OCC validation/snapshot aborts). Feeds
/// the restart-cost term of the response-time analysis.
struct RestartSource {
  /// The aborting spec; always of higher priority than the victim.
  SpecId spec = kInvalidSpec;
  /// Max aborts of one victim instance that one release of `spec` can
  /// cause (2PL-HP: one per conflicting lock request; OCC: one per
  /// commit).
  int per_release = 0;
};

/// The worst-case blocking analysis for one transaction.
struct SpecBlocking {
  /// BTS_i: the specs (all of lower priority) that may block T_i.
  std::vector<SpecId> bts;
  /// B_i: the worst-case effective blocking time. Meaningless when
  /// `bounded` is false (the accessors refuse to read it).
  Tick worst_blocking = 0;
  /// False when no finite B_i exists for this spec (2PL-PI).
  bool bounded = true;
  /// Restart sources, in priority order (restart protocols only).
  std::vector<RestartSource> restart_sources;
};

/// The analysis for a whole set under one protocol.
struct BlockingAnalysis {
  ProtocolKind protocol = ProtocolKind::kPcpDa;
  /// True iff every spec has a finite bound; false exactly for the
  /// kUnbounded trait kinds (2PL-PI).
  bool bounded = true;
  std::vector<SpecBlocking> per_spec;

  /// B_i. Checks that `spec` is in range and that its bound is finite —
  /// an out-of-range id or an unbounded protocol is a caller bug, not a
  /// silent garbage read.
  Tick B(SpecId spec) const;
  /// The full per-spec record, range-checked like B().
  const SpecBlocking& ForSpec(SpecId spec) const;
  /// All B_i in priority order; every spec must be bounded.
  std::vector<Tick> AllB() const;
  std::string DebugString(const TransactionSet& set) const;
};

/// Computes BTS_i and B_i for every spec under `protocol`, dispatched on
/// ProtocolTraits::blocking_bound:
///
///   kCeiling (Section 9):
///     PCP-DA:  BTS_i = { T_L | P_L < P_i, T_L reads some x with
///              Wceil(x) >= P_i };  B_i = max C_L.
///     RW-PCP:  additionally T_L with a write of x where Aceil(x) >= P_i.
///     PCP:     T_L accessing any x with Aceil(x) >= P_i.
///     CCP:     BTS as RW-PCP, but B_i uses the convex holding window of
///              the offending items instead of the full C_L.
///   kPushThrough (2PL-HP): BTS_i = lower T_L whose access set conflicts
///     with T_i (a rider in a mixed holder set); B_i = sum of their C_L.
///     Higher-priority conflicting specs become restart sources (their
///     winning requests abort T_i).
///   kNone (OCC-BC/OCC-DA): never blocks, B_i = 0; higher-priority specs
///     whose write set intersects T_i's read set become restart sources
///     (their commits invalidate T_i).
///   kUnbounded (2PL-PI): every spec is marked unbounded — chained
///     blocking has no finite bound — instead of a hard error.
BlockingAnalysis ComputeBlocking(const TransactionSet& set,
                                 ProtocolKind protocol);

/// The window (in ticks of T_L's own execution) during which T_L may hold
/// a lock whose runtime ceiling is >= `level`, under CCP early release.
/// Used for CCP's B_i; exposed for tests.
Tick CcpHoldingWindow(const TransactionSpec& spec,
                      const StaticCeilings& ceilings, Priority level);

}  // namespace pcpda

#endif  // PCPDA_ANALYSIS_BLOCKING_H_
