#ifndef PCPDA_ANALYSIS_BLOCKING_H_
#define PCPDA_ANALYSIS_BLOCKING_H_

#include <string>
#include <vector>

#include "common/types.h"
#include "db/ceilings.h"
#include "protocols/factory.h"
#include "txn/spec.h"

namespace pcpda {

/// The Section-9 worst-case blocking analysis for one transaction.
struct SpecBlocking {
  /// BTS_i: the specs (all of lower priority) that may block T_i.
  std::vector<SpecId> bts;
  /// B_i: the worst-case blocking time.
  Tick worst_blocking = 0;
};

/// The analysis for a whole set under one protocol.
struct BlockingAnalysis {
  ProtocolKind protocol = ProtocolKind::kPcpDa;
  std::vector<SpecBlocking> per_spec;

  Tick B(SpecId spec) const {
    return per_spec[static_cast<std::size_t>(spec)].worst_blocking;
  }
  std::vector<Tick> AllB() const;
  std::string DebugString(const TransactionSet& set) const;
};

/// Computes BTS_i and B_i for every spec under `protocol` (Section 9):
///
///   PCP-DA:  BTS_i = { T_L | P_L < P_i, T_L reads some x with
///                      Wceil(x) >= P_i };  B_i = max C_L.
///   RW-PCP:  additionally T_L with a write of x where Aceil(x) >= P_i.
///   PCP:     T_L accessing any x with Aceil(x) >= P_i.
///   CCP:     BTS as RW-PCP, but B_i uses the convex holding window of the
///            offending items instead of the full C_L (early unlocking).
///
/// Only the four ceiling protocols are analyzable; 2PL-PI has unbounded
/// chained blocking and 2PL-HP unbounded restarts.
BlockingAnalysis ComputeBlocking(const TransactionSet& set,
                                 ProtocolKind protocol);

/// The window (in ticks of T_L's own execution) during which T_L may hold
/// a lock whose runtime ceiling is >= `level`, under CCP early release.
/// Used for CCP's B_i; exposed for tests.
Tick CcpHoldingWindow(const TransactionSpec& spec,
                      const StaticCeilings& ceilings, Priority level);

}  // namespace pcpda

#endif  // PCPDA_ANALYSIS_BLOCKING_H_
