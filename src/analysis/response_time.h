#ifndef PCPDA_ANALYSIS_RESPONSE_TIME_H_
#define PCPDA_ANALYSIS_RESPONSE_TIME_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "txn/spec.h"

namespace pcpda {

/// Exact response-time analysis (extension to the paper's sufficient
/// Liu–Layland test; standard for fixed-priority systems with blocking):
///
///   R_i = C_i + B_i + sum_{j < i} ceil(R_i / Pd_j) C_j
///
/// iterated to a fixpoint. A transaction is schedulable iff R_i <= D_i.
/// This test is tighter than the utilization bound: sets the bound
/// rejects are often still schedulable.
struct ResponseTimeSpecResult {
  /// The fixpoint response time, or kNoTick if the iteration diverged
  /// past the deadline.
  Tick response = 0;
  bool schedulable = false;
};

struct ResponseTimeResult {
  std::vector<ResponseTimeSpecResult> per_spec;
  bool schedulable = false;

  std::string DebugString(const TransactionSet& set) const;
};

/// Runs the analysis on a fully periodic, rate-monotonically ordered set
/// with worst-case blocking `b` per spec.
StatusOr<ResponseTimeResult> ResponseTimeAnalysis(const TransactionSet& set,
                                                  const std::vector<Tick>& b);

}  // namespace pcpda

#endif  // PCPDA_ANALYSIS_RESPONSE_TIME_H_
