#ifndef PCPDA_ANALYSIS_RESPONSE_TIME_H_
#define PCPDA_ANALYSIS_RESPONSE_TIME_H_

#include <string>
#include <vector>

#include "analysis/blocking.h"
#include "common/status.h"
#include "common/types.h"
#include "txn/spec.h"

namespace pcpda {

/// Exact response-time analysis (extension to the paper's sufficient
/// Liu–Layland test; standard for fixed-priority systems with blocking):
///
///   R_i = C_i + B_i + sum_{j < i} ceil(R_i / Pd_j) C_j
///
/// iterated to a fixpoint. A transaction is schedulable iff R_i <= D_i.
/// This test is tighter than the utilization bound: sets the bound
/// rejects are often still schedulable.
struct ResponseTimeSpecResult {
  /// The fixpoint response time, or kNoTick if the iteration diverged
  /// past the deadline.
  Tick response = 0;
  bool schedulable = false;
};

struct ResponseTimeResult {
  std::vector<ResponseTimeSpecResult> per_spec;
  bool schedulable = false;

  std::string DebugString(const TransactionSet& set) const;
};

/// Runs the analysis on a fully periodic, rate-monotonically ordered set
/// with worst-case blocking `b` per spec.
StatusOr<ResponseTimeResult> ResponseTimeAnalysis(const TransactionSet& set,
                                                  const std::vector<Tick>& b);

/// Three-valued schedulability verdict. kUnknown is an honest refusal,
/// not a failure: the set is outside the analysis model (one-shot specs,
/// an unbounded protocol, or a higher-priority spec whose own verdict
/// already fell) so neither "schedulable" nor "unschedulable" would be
/// sound.
enum class SchedVerdict : std::uint8_t {
  kSchedulable,
  kUnschedulable,
  kUnknown,
};

const char* ToString(SchedVerdict verdict);

struct SpecSchedResult {
  /// Worst-case response fixpoint; kNoTick when diverged or unknown.
  Tick response = kNoTick;
  SchedVerdict verdict = SchedVerdict::kUnknown;
};

struct SchedAnalysis {
  std::vector<SpecSchedResult> per_spec;
  /// Aggregate: kSchedulable iff every spec is, kUnschedulable if any
  /// spec is, kUnknown otherwise.
  SchedVerdict verdict = SchedVerdict::kUnknown;

  std::string DebugString(const TransactionSet& set) const;
};

/// The protocol-aware schedulability test: the response-time fixpoint
/// with the protocol's blocking term B_i plus a restart-cost term for
/// restart-resolved protocols (2PL-HP aborts, OCC validation aborts) —
/// every abort wastes up to a full re-execution plus a fresh blocking
/// episode on the retry:
///
///   R_i = C_i + B_i + sum_{j < i} ceil(R_i / Pd_j) D_j
///             + sum_{s in restarts_i} (ceil(R_i / Pd_s) + 1) m_s
///               (C_i + B_i)
///
/// where D_j is one release's worst-case CPU demand of T_j: C_j plus
/// T_j's own abort re-executions (a restarting higher spec interferes
/// beyond its bare execution time).
///
/// Verdict rules:
///   - a non-periodic set (any one-shot spec) is kUnknown throughout —
///     the critical-instant argument needs periods;
///   - a spec without a finite B_i (2PL-PI) is kUnknown;
///   - a diverging fixpoint (R_i > D_i) is kUnschedulable — the
///     synchronous release pattern realizes it;
///   - a converging fixpoint claims kSchedulable only when every
///     higher-priority spec is itself kSchedulable: an overrunning
///     higher spec carries backlog into T_i's busy window, which the
///     ceil(R/Pd) interference term does not cover, so the claim
///     degrades to kUnknown instead.
SchedAnalysis AnalyzeResponseTimes(const TransactionSet& set,
                                   const BlockingAnalysis& blocking);

}  // namespace pcpda

#endif  // PCPDA_ANALYSIS_RESPONSE_TIME_H_
