#include "analysis/blocking.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/check.h"
#include "common/strings.h"

namespace pcpda {

std::vector<Tick> BlockingAnalysis::AllB() const {
  std::vector<Tick> b;
  b.reserve(per_spec.size());
  for (const SpecBlocking& sb : per_spec) b.push_back(sb.worst_blocking);
  return b;
}

std::string BlockingAnalysis::DebugString(const TransactionSet& set) const {
  std::vector<std::string> lines;
  lines.push_back(StrFormat("blocking analysis under %s:",
                            pcpda::ToString(protocol)));
  for (SpecId i = 0; i < set.size(); ++i) {
    const SpecBlocking& sb = per_spec[static_cast<std::size_t>(i)];
    std::vector<std::string> names;
    names.reserve(sb.bts.size());
    for (SpecId l : sb.bts) names.push_back(set.spec(l).name);
    lines.push_back(StrFormat("  %s: B=%lld BTS={%s}",
                              set.spec(i).name.c_str(),
                              static_cast<long long>(sb.worst_blocking),
                              Join(names, ",").c_str()));
  }
  return Join(lines, "\n");
}

namespace {

/// The ceiling an item raises while `spec` holds it (its highest-mode
/// contribution over the body).
Priority ItemContribution(const TransactionSpec& spec,
                          const StaticCeilings& ceilings, ItemId item) {
  if (spec.WriteSet().contains(item)) return ceilings.Aceil(item);
  return ceilings.Wceil(item);
}

}  // namespace

Tick CcpHoldingWindow(const TransactionSpec& spec,
                      const StaticCeilings& ceilings, Priority level) {
  const auto& body = spec.body;
  // Step start/end offsets within the body.
  std::vector<Tick> start(body.size()), end(body.size());
  Tick offset = 0;
  for (std::size_t k = 0; k < body.size(); ++k) {
    start[k] = offset;
    offset += body[k].duration;
    end[k] = offset;
  }
  const Tick total = offset;

  // First-access step per item.
  std::map<ItemId, std::size_t> first_access;
  for (std::size_t k = 0; k < body.size(); ++k) {
    if (body[k].kind == StepKind::kCompute) continue;
    first_access.try_emplace(body[k].item, k);
  }

  // The end of the growing phase: the step performing the body's last NEW
  // lock acquisition (first access of an item, or a read->write upgrade).
  // CCP releases nothing before that point (see Ccp::EarlyReleases).
  std::size_t last_acquisition = 0;
  std::set<ItemId> written;
  std::set<ItemId> seen;
  for (std::size_t k = 0; k < body.size(); ++k) {
    if (body[k].kind == StepKind::kCompute) continue;
    const bool new_item = seen.insert(body[k].item).second;
    const bool upgrade = body[k].kind == StepKind::kWrite &&
                         written.insert(body[k].item).second;
    if (new_item || upgrade) last_acquisition = k;
  }
  const Tick shrink_start = end[last_acquisition];

  Tick window_start = total;
  Tick window_end = 0;
  bool any = false;
  for (const auto& [item, first_k] : first_access) {
    const Priority contribution = ItemContribution(spec, ceilings, item);
    if (contribution < level) continue;
    // Released right after the later of (its own last use, the end of the
    // growing phase).
    std::size_t last_access = first_k;
    for (std::size_t k = first_k; k < body.size(); ++k) {
      if (body[k].kind != StepKind::kCompute && body[k].item == item) {
        last_access = k;
      }
    }
    const Tick release = std::max(end[last_access], shrink_start);
    any = true;
    window_start = std::min(window_start, start[first_k]);
    window_end = std::max(window_end, release);
  }
  return any ? window_end - window_start : 0;
}

BlockingAnalysis ComputeBlocking(const TransactionSet& set,
                                 ProtocolKind protocol) {
  PCPDA_CHECK_MSG(protocol == ProtocolKind::kPcpDa ||
                      protocol == ProtocolKind::kRwPcp ||
                      protocol == ProtocolKind::kCcp ||
                      protocol == ProtocolKind::kOpcp,
                  "no Section-9 analysis for 2PL protocols");
  const StaticCeilings ceilings(set);
  BlockingAnalysis analysis;
  analysis.protocol = protocol;
  analysis.per_spec.resize(static_cast<std::size_t>(set.size()));

  for (SpecId i = 0; i < set.size(); ++i) {
    const Priority p_i = set.priority(i);
    SpecBlocking& sb = analysis.per_spec[static_cast<std::size_t>(i)];
    for (SpecId l = i + 1; l < set.size(); ++l) {
      const TransactionSpec& lower = set.spec(l);
      bool blocks = false;
      switch (protocol) {
        case ProtocolKind::kPcpDa: {
          for (ItemId x : lower.ReadSet()) {
            if (ceilings.Wceil(x) >= p_i) {
              blocks = true;
              break;
            }
          }
          break;
        }
        case ProtocolKind::kRwPcp:
        case ProtocolKind::kCcp: {
          for (ItemId x : lower.ReadSet()) {
            if (ceilings.Wceil(x) >= p_i) {
              blocks = true;
              break;
            }
          }
          if (!blocks) {
            for (ItemId x : lower.WriteSet()) {
              if (ceilings.Aceil(x) >= p_i) {
                blocks = true;
                break;
              }
            }
          }
          break;
        }
        case ProtocolKind::kOpcp: {
          for (ItemId x : lower.AccessSet()) {
            if (ceilings.Aceil(x) >= p_i) {
              blocks = true;
              break;
            }
          }
          break;
        }
        default:
          PCPDA_UNREACHABLE("filtered above");
      }
      if (!blocks) continue;
      sb.bts.push_back(l);
      const Tick contribution = protocol == ProtocolKind::kCcp
                                    ? CcpHoldingWindow(lower, ceilings, p_i)
                                    : lower.ExecutionTime();
      sb.worst_blocking = std::max(sb.worst_blocking, contribution);
    }
  }
  return analysis;
}

}  // namespace pcpda
