#include "analysis/blocking.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/check.h"
#include "common/strings.h"

namespace pcpda {
namespace {

bool Intersects(const std::set<ItemId>& a, const std::set<ItemId>& b) {
  for (ItemId x : a) {
    if (b.contains(x)) return true;
  }
  return false;
}

/// Items on which `a` and `b` conflict (some access of one is a write of
/// the other). Read-read sharing is compatible under every protocol.
std::set<ItemId> ConflictItems(const TransactionSpec& a,
                               const TransactionSpec& b) {
  std::set<ItemId> items;
  for (ItemId x : a.WriteSet()) {
    if (b.AccessSet().contains(x)) items.insert(x);
  }
  for (ItemId x : b.WriteSet()) {
    if (a.AccessSet().contains(x)) items.insert(x);
  }
  return items;
}

}  // namespace

Tick BlockingAnalysis::B(SpecId spec) const {
  const SpecBlocking& sb = ForSpec(spec);
  PCPDA_CHECK_MSG(
      sb.bounded,
      StrFormat("BlockingAnalysis::B(%d): no finite blocking bound under "
                "%s — check ProtocolTraits::analyzable() first",
                spec, ToString(protocol))
          .c_str());
  return sb.worst_blocking;
}

const SpecBlocking& BlockingAnalysis::ForSpec(SpecId spec) const {
  PCPDA_CHECK_MSG(
      spec >= 0 && static_cast<std::size_t>(spec) < per_spec.size(),
      StrFormat("BlockingAnalysis::ForSpec(%d): spec id out of range "
                "[0, %zu)",
                spec, per_spec.size())
          .c_str());
  return per_spec[static_cast<std::size_t>(spec)];
}

std::vector<Tick> BlockingAnalysis::AllB() const {
  std::vector<Tick> b;
  b.reserve(per_spec.size());
  for (SpecId i = 0; i < static_cast<SpecId>(per_spec.size()); ++i) {
    b.push_back(B(i));
  }
  return b;
}

std::string BlockingAnalysis::DebugString(const TransactionSet& set) const {
  std::vector<std::string> lines;
  lines.push_back(StrFormat("blocking analysis under %s:",
                            pcpda::ToString(protocol)));
  for (SpecId i = 0; i < set.size(); ++i) {
    const SpecBlocking& sb = per_spec[static_cast<std::size_t>(i)];
    std::vector<std::string> names;
    names.reserve(sb.bts.size());
    for (SpecId l : sb.bts) names.push_back(set.spec(l).name);
    std::string line = StrFormat(
        "  %s: B=%s BTS={%s}", set.spec(i).name.c_str(),
        sb.bounded
            ? StrFormat("%lld", static_cast<long long>(sb.worst_blocking))
                  .c_str()
            : "unbounded",
        Join(names, ",").c_str());
    if (!sb.restart_sources.empty()) {
      std::vector<std::string> sources;
      for (const RestartSource& source : sb.restart_sources) {
        sources.push_back(StrFormat("%s x%d",
                                    set.spec(source.spec).name.c_str(),
                                    source.per_release));
      }
      line += StrFormat(" restarts={%s}", Join(sources, ",").c_str());
    }
    lines.push_back(line);
  }
  return Join(lines, "\n");
}

namespace {

/// The ceiling an item raises while `spec` holds it (its highest-mode
/// contribution over the body).
Priority ItemContribution(const TransactionSpec& spec,
                          const StaticCeilings& ceilings, ItemId item) {
  if (spec.WriteSet().contains(item)) return ceilings.Aceil(item);
  return ceilings.Wceil(item);
}

/// Section-9 BTS membership of `lower` in BTS_i at priority `p_i`.
bool CeilingBlocks(ProtocolKind protocol, const TransactionSpec& lower,
                   const StaticCeilings& ceilings, Priority p_i) {
  switch (protocol) {
    case ProtocolKind::kPcpDa: {
      for (ItemId x : lower.ReadSet()) {
        if (ceilings.Wceil(x) >= p_i) return true;
      }
      return false;
    }
    case ProtocolKind::kRwPcp:
    case ProtocolKind::kCcp: {
      for (ItemId x : lower.ReadSet()) {
        if (ceilings.Wceil(x) >= p_i) return true;
      }
      for (ItemId x : lower.WriteSet()) {
        if (ceilings.Aceil(x) >= p_i) return true;
      }
      return false;
    }
    case ProtocolKind::kOpcp: {
      for (ItemId x : lower.AccessSet()) {
        if (ceilings.Aceil(x) >= p_i) return true;
      }
      return false;
    }
    default:
      PCPDA_UNREACHABLE("not a ceiling protocol");
  }
}

void ComputeCeiling(const TransactionSet& set, ProtocolKind protocol,
                    BlockingAnalysis& analysis) {
  const StaticCeilings ceilings(set);
  for (SpecId i = 0; i < set.size(); ++i) {
    const Priority p_i = set.priority(i);
    SpecBlocking& sb = analysis.per_spec[static_cast<std::size_t>(i)];
    for (SpecId l = i + 1; l < set.size(); ++l) {
      const TransactionSpec& lower = set.spec(l);
      if (!CeilingBlocks(protocol, lower, ceilings, p_i)) continue;
      sb.bts.push_back(l);
      const Tick contribution = protocol == ProtocolKind::kCcp
                                    ? CcpHoldingWindow(lower, ceilings, p_i)
                                    : lower.ExecutionTime();
      sb.worst_blocking = std::max(sb.worst_blocking, contribution);
    }
  }
}

/// 2PL-HP. A requester aborts every conflicting holder iff it outranks
/// them all; otherwise it waits on the whole set — including lower
/// priority riders holding the same item behind a higher-priority
/// holder. B_i conservatively sums the execution times of every lower
/// spec T_i conflicts with (each rider can be mid-body when T_i arrives
/// at the lock). Higher-priority conflicting specs cannot block T_i for
/// long — they abort it instead — so they enter the restart sources: one
/// abort per conflicting lock request, at most one request per body step
/// touching a conflicting item.
void ComputeTwoPlHp(const TransactionSet& set, BlockingAnalysis& analysis) {
  for (SpecId i = 0; i < set.size(); ++i) {
    const TransactionSpec& spec = set.spec(i);
    SpecBlocking& sb = analysis.per_spec[static_cast<std::size_t>(i)];
    for (SpecId l = i + 1; l < set.size(); ++l) {
      const TransactionSpec& lower = set.spec(l);
      if (ConflictItems(spec, lower).empty()) continue;
      sb.bts.push_back(l);
      sb.worst_blocking += lower.ExecutionTime();
    }
    for (SpecId h = 0; h < i; ++h) {
      const TransactionSpec& higher = set.spec(h);
      const std::set<ItemId> items = ConflictItems(higher, spec);
      if (items.empty()) continue;
      int requests = 0;
      for (const Step& step : higher.body) {
        if (step.kind != StepKind::kCompute && items.contains(step.item)) {
          ++requests;
        }
      }
      sb.restart_sources.push_back(RestartSource{h, requests});
    }
  }
}

/// OCC-BC / OCC-DA. Requests are always granted, so B_i = 0. A commit
/// whose write set intersects T_i's read set invalidates T_i: OCC-BC
/// aborts it at broadcast, OCC-DA either at broadcast (if T_i wrote) or
/// through a later snapshot-constraint violation — either way at most
/// one abort per committing instance. Lower-priority specs never commit
/// while T_i is active (an OCC job is always ready, so nothing of lower
/// priority runs under it), leaving only higher-priority sources.
void ComputeOcc(const TransactionSet& set, BlockingAnalysis& analysis) {
  for (SpecId i = 0; i < set.size(); ++i) {
    const TransactionSpec& spec = set.spec(i);
    SpecBlocking& sb = analysis.per_spec[static_cast<std::size_t>(i)];
    for (SpecId h = 0; h < i; ++h) {
      if (!Intersects(set.spec(h).WriteSet(), spec.ReadSet())) continue;
      sb.restart_sources.push_back(RestartSource{h, 1});
    }
  }
}

/// 2PL-PI. A blocked requester donates its priority down a wait chain of
/// arbitrary depth, so a spec that conflicts with anyone has no finite
/// effective-blocking bound. A spec with no conflicting item at all is
/// never denied a lock and gets B_i = 0.
void ComputeTwoPlPi(const TransactionSet& set, BlockingAnalysis& analysis) {
  for (SpecId i = 0; i < set.size(); ++i) {
    const TransactionSpec& spec = set.spec(i);
    SpecBlocking& sb = analysis.per_spec[static_cast<std::size_t>(i)];
    for (SpecId other = 0; other < set.size(); ++other) {
      if (other == i) continue;
      if (ConflictItems(spec, set.spec(other)).empty()) continue;
      sb.bounded = false;
      analysis.bounded = false;
      break;
    }
  }
}

}  // namespace

Tick CcpHoldingWindow(const TransactionSpec& spec,
                      const StaticCeilings& ceilings, Priority level) {
  const auto& body = spec.body;
  // Step start/end offsets within the body.
  std::vector<Tick> start(body.size()), end(body.size());
  Tick offset = 0;
  for (std::size_t k = 0; k < body.size(); ++k) {
    start[k] = offset;
    offset += body[k].duration;
    end[k] = offset;
  }
  const Tick total = offset;

  // First-access step per item.
  std::map<ItemId, std::size_t> first_access;
  for (std::size_t k = 0; k < body.size(); ++k) {
    if (body[k].kind == StepKind::kCompute) continue;
    first_access.try_emplace(body[k].item, k);
  }

  // The end of the growing phase: the step performing the body's last NEW
  // lock acquisition (first access of an item, or a read->write upgrade).
  // CCP releases nothing before that point (see Ccp::EarlyReleases).
  std::size_t last_acquisition = 0;
  std::set<ItemId> written;
  std::set<ItemId> seen;
  for (std::size_t k = 0; k < body.size(); ++k) {
    if (body[k].kind == StepKind::kCompute) continue;
    const bool new_item = seen.insert(body[k].item).second;
    const bool upgrade = body[k].kind == StepKind::kWrite &&
                         written.insert(body[k].item).second;
    if (new_item || upgrade) last_acquisition = k;
  }
  const Tick shrink_start = end[last_acquisition];

  Tick window_start = total;
  Tick window_end = 0;
  bool any = false;
  for (const auto& [item, first_k] : first_access) {
    const Priority contribution = ItemContribution(spec, ceilings, item);
    if (contribution < level) continue;
    // Released right after the later of (its own last use, the end of the
    // growing phase).
    std::size_t last_access = first_k;
    for (std::size_t k = first_k; k < body.size(); ++k) {
      if (body[k].kind != StepKind::kCompute && body[k].item == item) {
        last_access = k;
      }
    }
    const Tick release = std::max(end[last_access], shrink_start);
    any = true;
    window_start = std::min(window_start, start[first_k]);
    window_end = std::max(window_end, release);
  }
  return any ? window_end - window_start : 0;
}

BlockingAnalysis ComputeBlocking(const TransactionSet& set,
                                 ProtocolKind protocol) {
  BlockingAnalysis analysis;
  analysis.protocol = protocol;
  analysis.per_spec.resize(static_cast<std::size_t>(set.size()));
  switch (TraitsOf(protocol).blocking_bound) {
    case BlockingBoundKind::kCeiling:
      ComputeCeiling(set, protocol, analysis);
      break;
    case BlockingBoundKind::kPushThrough:
      ComputeTwoPlHp(set, analysis);
      break;
    case BlockingBoundKind::kNone:
      ComputeOcc(set, analysis);
      break;
    case BlockingBoundKind::kUnbounded:
      ComputeTwoPlPi(set, analysis);
      break;
  }
  return analysis;
}

}  // namespace pcpda
