#include "analysis/rm_bound.h"

#include <cmath>

#include "common/check.h"
#include "common/strings.h"

namespace pcpda {

double RmUtilizationBound(int i) {
  PCPDA_CHECK(i >= 1);
  return static_cast<double>(i) *
         (std::pow(2.0, 1.0 / static_cast<double>(i)) - 1.0);
}

StatusOr<RmBoundResult> LiuLaylandTest(const TransactionSet& set,
                                       const std::vector<Tick>& b) {
  if (b.size() != static_cast<std::size_t>(set.size())) {
    return Status::InvalidArgument(
        "blocking vector size does not match the transaction set");
  }
  Tick previous_period = 0;
  for (SpecId i = 0; i < set.size(); ++i) {
    const TransactionSpec& spec = set.spec(i);
    if (spec.period <= 0) {
      return Status::FailedPrecondition(
          spec.name + ": the Section-9 test requires periodic transactions");
    }
    if (spec.period < previous_period) {
      return Status::FailedPrecondition(
          "set is not rate-monotonically ordered");
    }
    previous_period = spec.period;
  }

  RmBoundResult result;
  result.schedulable = true;
  double utilization_sum = 0.0;
  for (SpecId i = 0; i < set.size(); ++i) {
    const TransactionSpec& spec = set.spec(i);
    utilization_sum += static_cast<double>(spec.ExecutionTime()) /
                       static_cast<double>(spec.period);
    RmBoundSpecResult r;
    r.utilization_sum = utilization_sum;
    r.blocking_term = static_cast<double>(b[static_cast<std::size_t>(i)]) /
                      static_cast<double>(spec.period);
    r.bound = RmUtilizationBound(static_cast<int>(i) + 1);
    r.schedulable = r.utilization_sum + r.blocking_term <= r.bound;
    result.schedulable = result.schedulable && r.schedulable;
    result.per_spec.push_back(r);
  }
  return result;
}

StatusOr<HyperbolicResult> HyperbolicTest(const TransactionSet& set,
                                          const std::vector<Tick>& b) {
  if (b.size() != static_cast<std::size_t>(set.size())) {
    return Status::InvalidArgument(
        "blocking vector size does not match the transaction set");
  }
  Tick previous_period = 0;
  for (SpecId i = 0; i < set.size(); ++i) {
    if (set.spec(i).period <= 0) {
      return Status::FailedPrecondition(
          set.spec(i).name + ": the hyperbolic test requires periods");
    }
    if (set.spec(i).period < previous_period) {
      return Status::FailedPrecondition(
          "set is not rate-monotonically ordered");
    }
    previous_period = set.spec(i).period;
  }

  HyperbolicResult result;
  result.schedulable = true;
  double prefix = 1.0;  // prod (U_j + 1) over j < i
  for (SpecId i = 0; i < set.size(); ++i) {
    const TransactionSpec& spec = set.spec(i);
    const double u_i = static_cast<double>(spec.ExecutionTime()) /
                       static_cast<double>(spec.period);
    HyperbolicSpecResult r;
    r.blocking_factor =
        u_i +
        static_cast<double>(b[static_cast<std::size_t>(i)]) /
            static_cast<double>(spec.period) +
        1.0;
    r.product = prefix * r.blocking_factor;
    r.schedulable = r.product <= 2.0;
    result.schedulable = result.schedulable && r.schedulable;
    result.per_spec.push_back(r);
    prefix *= u_i + 1.0;
  }
  return result;
}

std::string HyperbolicResult::DebugString(const TransactionSet& set) const {
  std::vector<std::string> lines;
  for (SpecId i = 0; i < set.size(); ++i) {
    const HyperbolicSpecResult& r =
        per_spec[static_cast<std::size_t>(i)];
    lines.push_back(StrFormat(
        "%s: prod (last factor %.4f) = %.4f vs 2 -> %s",
        set.spec(i).name.c_str(), r.blocking_factor, r.product,
        r.schedulable ? "OK" : "FAIL"));
  }
  lines.push_back(std::string("overall: ") +
                  (schedulable ? "schedulable" : "NOT schedulable"));
  return Join(lines, "\n");
}

std::string RmBoundResult::DebugString(const TransactionSet& set) const {
  std::vector<std::string> lines;
  for (SpecId i = 0; i < set.size(); ++i) {
    const RmBoundSpecResult& r = per_spec[static_cast<std::size_t>(i)];
    lines.push_back(StrFormat(
        "%s: U=%.4f + B/Pd=%.4f vs bound %.4f -> %s",
        set.spec(i).name.c_str(), r.utilization_sum, r.blocking_term,
        r.bound, r.schedulable ? "OK" : "FAIL"));
  }
  lines.push_back(std::string("overall: ") +
                  (schedulable ? "schedulable" : "NOT schedulable"));
  return Join(lines, "\n");
}

}  // namespace pcpda
