#include "supervisor/supervisor.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <unordered_set>
#include <utility>

#include "campaign/checkpoint.h"
#include "common/rng.h"
#include "common/strings.h"

namespace pcpda {
namespace {

/// SIGCHLD self-pipe. The handler only writes one byte; everything else
/// (waitpid, bookkeeping) happens in the poll loop. Static because
/// sigaction handlers cannot carry state; Run() is documented as
/// one-at-a-time per process.
int g_sigchld_wfd = -1;

void SigchldHandler(int) {
  const int saved = errno;
  if (g_sigchld_wfd >= 0) {
    const char byte = 'c';
    [[maybe_unused]] ssize_t n = ::write(g_sigchld_wfd, &byte, 1);
  }
  errno = saved;
}

Status ErrnoStatus(const char* what) {
  return Status::Internal(StrFormat("%s: %s", what, std::strerror(errno)));
}

/// Signals whose delivery means the worker itself is defective (as
/// opposed to killed from outside): these are what a poison job looks
/// like from the parent.
bool IsCrashSignal(int sig) {
  return sig == SIGSEGV || sig == SIGABRT || sig == SIGBUS ||
         sig == SIGILL || sig == SIGFPE;
}

int MillisUntil(std::chrono::steady_clock::time_point now,
                std::chrono::steady_clock::time_point then) {
  if (then <= now) return 0;
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
      then - now);
  return static_cast<int>(std::min<std::int64_t>(ms.count() + 1, 60'000));
}

}  // namespace

Supervisor::Supervisor(CampaignSpec spec, SupervisorOptions options)
    : spec_(std::move(spec)),
      options_(std::move(options)),
      campaign_(spec_,
                [this] {
                  CampaignOptions merge_options;
                  merge_options.out_dir = options_.out_dir;
                  merge_options.fsync = options_.fsync;
                  return merge_options;
                }()),
      chaos_(ChaosSchedule::Make(options_.chaos_seed, options_.chaos_kills,
                                 options_.chaos_stops)) {}

bool Supervisor::ShardBusy(int shard) const {
  for (const Worker& worker : live_) {
    if (worker.task.shard == shard) return true;
  }
  return false;
}

StatusOr<std::vector<std::int64_t>> Supervisor::PendingJobs(
    const Task& task) const {
  auto loaded = LoadCheckpoint(
      Campaign::ShardPath(options_.out_dir, task.shard),
      spec_.Fingerprint());
  if (!loaded.ok()) return loaded.status();
  std::unordered_set<std::int64_t> recorded;
  recorded.reserve(loaded->records.size());
  for (const JobRecord& record : loaded->records) {
    recorded.insert(record.job_id);
  }
  std::vector<std::int64_t> pending;
  for (const CampaignJob& job : spec_.JobsForShard(task.shard)) {
    if (task.lo >= 0 && job.id < task.lo) continue;
    if (task.hi >= 0 && job.id >= task.hi) continue;
    if (recorded.count(job.id)) continue;
    pending.push_back(job.id);
  }
  return pending;
}

std::vector<std::string> Supervisor::WorkerArgs(const Task& task,
                                                int hb_fd) const {
  std::vector<std::string> args;
  args.push_back(options_.worker_binary);
  args.push_back("--worker");
  args.push_back("--out=" + options_.out_dir);
  args.push_back(StrFormat("--shard=%d", task.shard));
  args.push_back(StrFormat("--jobs=%d", options_.worker_jobs));
  args.push_back(StrFormat("--heartbeat-fd=%d", hb_fd));
  for (std::string& flag : spec_.ToFlags()) {
    args.push_back(std::move(flag));
  }
  if (!options_.fsync) args.push_back("--no-fsync");
  if (!options_.lint_preflight) args.push_back("--no-lint-preflight");
  if (task.lo >= 0) {
    args.push_back(StrFormat("--job-first=%lld",
                             static_cast<long long>(task.lo)));
  }
  if (task.hi >= 0) {
    args.push_back(StrFormat("--job-last=%lld",
                             static_cast<long long>(task.hi)));
  }
  if (options_.inject_crash_job >= 0) {
    args.push_back(StrFormat("--inject-crash=%lld",
                             static_cast<long long>(
                                 options_.inject_crash_job)));
  }
  if (options_.inject_hang_job >= 0) {
    args.push_back(StrFormat("--inject-hang=%lld",
                             static_cast<long long>(
                                 options_.inject_hang_job)));
  }
  if (options_.inject_segv_job >= 0) {
    args.push_back(StrFormat("--inject-crash-job=%lld",
                             static_cast<long long>(
                                 options_.inject_segv_job)));
  }
  if (options_.inject_spin_job >= 0) {
    args.push_back(StrFormat("--inject-spin-job=%lld",
                             static_cast<long long>(
                                 options_.inject_spin_job)));
  }
  return args;
}

int Supervisor::BackoffMs(const Task& task) const {
  const int attempt = std::max(task.attempts, 1);
  const int shift = std::min(attempt - 1, 20);
  const std::int64_t base = std::max(options_.backoff_base_ms, 1);
  std::int64_t delay =
      std::min<std::int64_t>(base << shift,
                             std::max(options_.backoff_cap_ms, 1));
  // Deterministic jitter: seeded by (spec, shard, attempt), so reruns
  // back off identically — debuggability beats decorrelation here.
  const std::uint64_t jitter_stream =
      SplitMixSeed(spec_.base_seed ^ 0x5c4eab150eULL,
                   static_cast<std::uint64_t>(task.shard) * 1024u +
                       static_cast<std::uint64_t>(attempt));
  delay += static_cast<std::int64_t>(jitter_stream %
                                     static_cast<std::uint64_t>(base));
  return static_cast<int>(std::min<std::int64_t>(delay, 60'000));
}

Status Supervisor::Spawn(const Task& task) {
  auto pending = PendingJobs(task);
  if (!pending.ok()) return pending.status();
  if (pending->empty()) return Status::Ok();  // finished by a prior worker

  int fds[2];
  if (::pipe(fds) != 0) return ErrnoStatus("pipe");
  // Read end: supervisor-only. CLOEXEC keeps later workers from
  // inheriting it; nonblocking because the poll loop drains it.
  ::fcntl(fds[0], F_SETFD, FD_CLOEXEC);
  ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
  // The write end is deliberately NOT CLOEXEC: it must survive exec into
  // the worker. It cannot leak into siblings because the parent closes
  // it right after fork, before any other Spawn.

  std::vector<std::string> args = WorkerArgs(task, fds[1]);
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);

  const ::pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return ErrnoStatus("fork");
  }
  if (pid == 0) {
    // Child: async-signal-safe calls only between fork and exec.
    ::execv(argv[0], argv.data());
    ::_exit(127);
  }
  ::close(fds[1]);

  Worker worker;
  worker.task = task;
  worker.pid = pid;
  worker.hb_fd = fds[0];
  std::int64_t range_jobs = 0;
  for (const CampaignJob& job : spec_.JobsForShard(task.shard)) {
    if (task.lo >= 0 && job.id < task.lo) continue;
    if (task.hi >= 0 && job.id >= task.hi) continue;
    ++range_jobs;
  }
  worker.recorded_at_spawn =
      range_jobs - static_cast<std::int64_t>(pending->size());
  worker.started = Clock::now();
  worker.last_beat = worker.started;
  live_.push_back(worker);
  ++stats_.workers_spawned;
  return Status::Ok();
}

Status Supervisor::SpawnEligible() {
  const auto now = Clock::now();
  bool progress = true;
  while (progress && !stopping_ && !fatal_ &&
         static_cast<int>(live_.size()) < options_.max_workers) {
    progress = false;
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->eligible_at > now) continue;
      if (ShardBusy(it->shard)) continue;
      Task task = *it;
      queue_.erase(it);
      PCPDA_RETURN_IF_ERROR(Spawn(task));
      progress = true;
      break;
    }
  }
  return Status::Ok();
}

void Supervisor::DrainHeartbeats(std::size_t worker_index) {
  Worker& worker = live_[worker_index];
  char buffer[256];
  std::int64_t bytes = 0;
  for (;;) {
    const ssize_t n = ::read(worker.hb_fd, buffer, sizeof(buffer));
    if (n > 0) {
      bytes += n;
      continue;
    }
    break;  // 0 = worker closed its end (exit pending), <0 = EAGAIN/EINTR
  }
  if (bytes == 0) return;
  stats_.heartbeats += bytes;
  worker.last_beat = Clock::now();
  // Chaos injections ride on heartbeats: the schedule's clock is total
  // campaign progress, and the victim is whichever worker just proved it
  // was alive — the cruellest possible moment to kill it.
  while (const ChaosEvent* event =
             chaos_.Due(static_cast<std::uint64_t>(stats_.heartbeats))) {
    if (event->kill) {
      ::kill(worker.pid, SIGKILL);
      ++stats_.chaos_kills_injected;
    } else {
      ::kill(worker.pid, SIGSTOP);
      ++stats_.chaos_stops_injected;
    }
    worker.chaos = true;
  }
}

void Supervisor::CheckStalls() {
  const auto now = Clock::now();
  for (Worker& worker : live_) {
    if (worker.term_sent) {
      if (now - worker.term_at >=
          std::chrono::milliseconds(options_.term_grace_ms)) {
        ::kill(worker.pid, SIGKILL);
      }
      continue;
    }
    const bool stalled =
        options_.stall_timeout_ms > 0 &&
        now - worker.last_beat >=
            std::chrono::milliseconds(options_.stall_timeout_ms);
    const bool over_deadline =
        options_.shard_deadline_ms > 0 &&
        now - worker.started >=
            std::chrono::milliseconds(options_.shard_deadline_ms);
    if (!stalled && !over_deadline) continue;
    // Escalation step 1: SIGTERM asks the worker to stop gracefully
    // (it checkpoints per record, so nothing durable is at risk). A
    // worker wedged in native code — or SIGSTOPped — ignores this and
    // meets step 2 after term_grace_ms.
    ::kill(worker.pid, SIGTERM);
    worker.term_sent = true;
    worker.term_at = now;
    ++stats_.hang_escalations;
  }
}

void Supervisor::RequestStop() {
  if (stopping_) return;
  stopping_ = true;
  for (const Worker& worker : live_) {
    ::kill(worker.pid, SIGTERM);
  }
}

void Supervisor::HandleDeath(Worker worker, int wait_status) {
  ::close(worker.hb_fd);
  Task task = worker.task;

  const bool exited = WIFEXITED(wait_status);
  const int exit_code = exited ? WEXITSTATUS(wait_status) : -1;
  const int sig = WIFSIGNALED(wait_status) ? WTERMSIG(wait_status) : 0;

  auto pending = PendingJobs(task);
  if (!pending.ok()) {
    fatal_ = true;
    fatal_status_ = pending.status();
    return;
  }

  std::string death;
  if (exited) {
    death = StrFormat("exit %d", exit_code);
  } else {
    death = StrFormat("killed by signal %d (%s)%s", sig,
                      ::strsignal(sig),
                      worker.term_sent ? " after escalation" : "");
  }

  // Classify for the stats; the retry decision below only cares about
  // voluntary vs involuntary and chaos vs genuine.
  if (exited && exit_code == 0) {
    ++stats_.clean_exits;
  } else if (exited) {
    ++stats_.error_exits;
  } else if (IsCrashSignal(sig)) {
    ++stats_.crash_deaths;
  } else if (sig == SIGKILL && !worker.chaos && !worker.term_sent) {
    ++stats_.kill_deaths;  // not ours, not chaos: the OOM killer's MO
  } else if (!worker.chaos && !worker.term_sent) {
    ++stats_.other_signal_deaths;
  }

  if (pending->empty()) return;  // task complete, however the worker died

  if (stopping_) return;  // graceful stop: leave the remainder pending

  if (worker.chaos) {
    // Scheduled noise. The task goes straight back; chaos must never
    // consume attempts or trip bisection, or the self-test could abandon
    // work and break the byte-identity bar it exists to prove.
    task.eligible_at = Clock::now();
    queue_.push_back(task);
    return;
  }

  // Progress = the checkpoint gained records during this worker's life.
  // (A worker we SIGTERMed for stalling may still exit voluntarily with
  // pending jobs — that is an answer to OUR signal, but the stall itself
  // is evidence, so every death that reaches this point is judged.)
  std::int64_t range_jobs = 0;
  for (const CampaignJob& job : spec_.JobsForShard(task.shard)) {
    if (task.lo >= 0 && job.id < task.lo) continue;
    if (task.hi >= 0 && job.id >= task.hi) continue;
    ++range_jobs;
  }
  const std::int64_t recorded_after =
      range_jobs - static_cast<std::int64_t>(pending->size());
  const bool made_progress = recorded_after > worker.recorded_at_spawn;

  // Only process-killing deaths feed the bisection counter: a death by
  // signal, or a SIGKILL after our own escalation. A voluntary nonzero
  // exit (bad flags, exec failure's 127, an IO error) is the worker
  // *telling* us something is wrong — deterministic maybe, but not a
  // poison job, so it takes the retry/abandon path only.
  const bool killing_death = !exited || worker.term_sent;
  if (made_progress) {
    task.deaths_without_progress = 0;
  } else if (killing_death) {
    ++task.deaths_without_progress;
  }
  ++task.attempts;

  // Bisection: repeated deaths with zero checkpoint progress mean some
  // job in the pending range deterministically kills its process.
  // Splitting the range lets the healthy half complete while the hunt
  // continues in the other; at a singleton, the culprit is proven.
  if (task.deaths_without_progress >= options_.bisect_after) {
    if (pending->size() == 1) {
      JobRecord record;
      record.job_id = pending->front();
      record.outcome = "crash";
      record.attempts = task.attempts;
      record.code = "Internal";
      record.message =
          StrFormat("worker process died on this job %d times in a row "
                    "without recording it (last: %s); isolated by range "
                    "bisection and quarantined",
                    task.deaths_without_progress, death.c_str());
      const Status recorded = campaign_.RecordPoisonJob(record);
      if (!recorded.ok()) {
        fatal_ = true;
        fatal_status_ = recorded;
        return;
      }
      ++stats_.poison_jobs;
      return;
    }
    const std::int64_t mid = (*pending)[pending->size() / 2];
    Task left;
    left.shard = task.shard;
    left.lo = task.lo;
    left.hi = mid;
    Task right;
    right.shard = task.shard;
    right.lo = mid;
    right.hi = task.hi;
    const auto now = Clock::now();
    left.eligible_at = now;
    right.eligible_at = now;
    queue_.push_back(left);
    queue_.push_back(right);
    ++stats_.bisections;
    return;
  }

  if (task.attempts >= options_.max_task_attempts) {
    // Give up on the range; its jobs stay pending and the final merge
    // reports a partial campaign rather than looping forever.
    ++stats_.abandoned_tasks;
    return;
  }

  ++stats_.retries;
  task.eligible_at =
      Clock::now() + std::chrono::milliseconds(BackoffMs(task));
  queue_.push_back(task);
}

void Supervisor::ReapAll() {
  for (;;) {
    int wait_status = 0;
    const ::pid_t pid = ::waitpid(-1, &wait_status, WNOHANG);
    if (pid <= 0) break;
    auto it = std::find_if(live_.begin(), live_.end(),
                           [pid](const Worker& w) { return w.pid == pid; });
    if (it == live_.end()) continue;  // not ours (defensive)
    // Drain any last heartbeats before judging progress — bytes written
    // just before death still count.
    DrainHeartbeats(static_cast<std::size_t>(it - live_.begin()));
    Worker worker = *it;
    live_.erase(it);
    HandleDeath(std::move(worker), wait_status);
  }
}

StatusOr<CampaignReport> Supervisor::Run() {
  if (options_.out_dir.empty()) {
    return Status::InvalidArgument("supervisor requires an out_dir");
  }
  if (options_.worker_binary.empty()) {
    return Status::InvalidArgument("supervisor requires a worker binary");
  }
  if (options_.max_workers < 1) {
    return Status::InvalidArgument("max_workers must be >= 1");
  }
  PCPDA_RETURN_IF_ERROR(spec_.Validate());
  {
    std::error_code ec;
    std::filesystem::create_directories(options_.out_dir, ec);
    if (ec) {
      return Status::Internal(StrFormat("mkdir %s: %s",
                                        options_.out_dir.c_str(),
                                        ec.message().c_str()));
    }
  }

  // SIGCHLD self-pipe + handler. SA_NOCLDSTOP: chaos SIGSTOPs must not
  // look like deaths; only termination should wake the reaper.
  int sigchld_pipe[2];
  if (::pipe(sigchld_pipe) != 0) return ErrnoStatus("pipe");
  for (int fd : {sigchld_pipe[0], sigchld_pipe[1]}) {
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
    ::fcntl(fd, F_SETFL, O_NONBLOCK);
  }
  g_sigchld_wfd = sigchld_pipe[1];
  struct sigaction sigchld_action;
  std::memset(&sigchld_action, 0, sizeof(sigchld_action));
  sigchld_action.sa_handler = SigchldHandler;
  sigemptyset(&sigchld_action.sa_mask);
  sigchld_action.sa_flags = SA_RESTART | SA_NOCLDSTOP;
  struct sigaction old_sigchld;
  ::sigaction(SIGCHLD, &sigchld_action, &old_sigchld);

  for (int shard = 0; shard < spec_.shards; ++shard) {
    Task task;
    task.shard = shard;
    task.eligible_at = Clock::now();
    queue_.push_back(task);
  }

  Status loop_status = Status::Ok();
  while (!fatal_) {
    if (options_.signal_flag != nullptr && *options_.signal_flag != 0) {
      RequestStop();
    }
    loop_status = SpawnEligible();
    if (!loop_status.ok()) break;
    if (live_.empty()) {
      if (stopping_ || queue_.empty()) break;
      // Everything queued is backing off or shard-blocked; sleep until
      // the earliest becomes eligible.
      auto next = queue_.front().eligible_at;
      for (const Task& task : queue_) {
        next = std::min(next, task.eligible_at);
      }
      const int wait_ms =
          std::max(MillisUntil(Clock::now(), next), 1);
      ::poll(nullptr, 0, std::min(wait_ms, 100));
      continue;
    }

    std::vector<struct pollfd> fds;
    fds.push_back({sigchld_pipe[0], POLLIN, 0});
    if (options_.signal_rfd >= 0) {
      fds.push_back({options_.signal_rfd, POLLIN, 0});
    }
    const std::size_t first_hb = fds.size();
    for (const Worker& worker : live_) {
      fds.push_back({worker.hb_fd, POLLIN, 0});
    }

    const int ready = ::poll(fds.data(),
                             static_cast<nfds_t>(fds.size()), 50);
    if (ready < 0 && errno != EINTR) {
      loop_status = ErrnoStatus("poll");
      break;
    }
    if (ready > 0) {
      if (fds[0].revents & POLLIN) {
        char sink[64];
        while (::read(sigchld_pipe[0], sink, sizeof(sink)) > 0) {
        }
      }
      if (options_.signal_rfd >= 0 && (fds[1].revents & POLLIN)) {
        char sink[64];
        while (::read(options_.signal_rfd, sink, sizeof(sink)) > 0) {
        }
        RequestStop();
      }
      // Heartbeats before reaping: progress must be visible before the
      // death that follows it is judged. Index by position: live_ is
      // stable between the poll and these reads.
      for (std::size_t i = first_hb; i < fds.size(); ++i) {
        if (fds[i].revents & (POLLIN | POLLHUP)) {
          DrainHeartbeats(i - first_hb);
        }
      }
    }
    ReapAll();
    CheckStalls();
  }

  // Drain any stragglers so no worker outlives (or is zombied by) the
  // supervisor, even on the error paths above.
  if (!live_.empty()) {
    for (const Worker& worker : live_) {
      ::kill(worker.pid, SIGKILL);
    }
    for (const Worker& worker : live_) {
      int wait_status = 0;
      ::waitpid(worker.pid, &wait_status, 0);
      ::close(worker.hb_fd);
    }
    live_.clear();
  }
  ::sigaction(SIGCHLD, &old_sigchld, nullptr);
  g_sigchld_wfd = -1;
  ::close(sigchld_pipe[0]);
  ::close(sigchld_pipe[1]);

  if (fatal_) return fatal_status_;
  PCPDA_RETURN_IF_ERROR(loop_status);

  auto report = campaign_.Merge(stopping_);
  if (!report.ok()) return report.status();

  PCPDA_RETURN_IF_ERROR(WriteFileAtomic(
      options_.out_dir + "/SUPERVISOR.json", RenderStats()));
  return report;
}

std::string Supervisor::RenderStats() const {
  const SupervisorStats& s = stats_;
  return StrFormat(
      "{\n"
      "  \"workers_spawned\": %lld,\n"
      "  \"clean_exits\": %lld,\n"
      "  \"error_exits\": %lld,\n"
      "  \"crash_deaths\": %lld,\n"
      "  \"kill_deaths\": %lld,\n"
      "  \"other_signal_deaths\": %lld,\n"
      "  \"hang_escalations\": %lld,\n"
      "  \"retries\": %lld,\n"
      "  \"bisections\": %lld,\n"
      "  \"poison_jobs\": %lld,\n"
      "  \"abandoned_tasks\": %lld,\n"
      "  \"chaos_kills_injected\": %lld,\n"
      "  \"chaos_stops_injected\": %lld,\n"
      "  \"heartbeats\": %lld\n"
      "}\n",
      static_cast<long long>(s.workers_spawned),
      static_cast<long long>(s.clean_exits),
      static_cast<long long>(s.error_exits),
      static_cast<long long>(s.crash_deaths),
      static_cast<long long>(s.kill_deaths),
      static_cast<long long>(s.other_signal_deaths),
      static_cast<long long>(s.hang_escalations),
      static_cast<long long>(s.retries),
      static_cast<long long>(s.bisections),
      static_cast<long long>(s.poison_jobs),
      static_cast<long long>(s.abandoned_tasks),
      static_cast<long long>(s.chaos_kills_injected),
      static_cast<long long>(s.chaos_stops_injected),
      static_cast<long long>(s.heartbeats));
}

}  // namespace pcpda
