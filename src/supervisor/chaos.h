#ifndef PCPDA_SUPERVISOR_CHAOS_H_
#define PCPDA_SUPERVISOR_CHAOS_H_

#include <cstdint>
#include <vector>

namespace pcpda {

/// One scheduled fault injection against a live worker process.
struct ChaosEvent {
  /// Fires when the supervisor has seen this many heartbeat bytes in
  /// total (across all workers) — heartbeats are the only clock the
  /// schedule uses, so the injection points track real campaign progress
  /// instead of wall time and a chaos run on a loaded machine injects at
  /// the same *logical* points as on an idle one.
  std::uint64_t at_heartbeat = 0;
  /// SIGKILL when true (instant death, progress since the last record is
  /// lost, the shard resumes); SIGSTOP when false (the worker freezes,
  /// the stall detector must notice and escalate SIGTERM→SIGKILL).
  bool kill = true;
};

/// The chaos self-test's seeded injection schedule: `kills` SIGKILL and
/// `stops` SIGSTOP events, interleaved deterministically from `seed`
/// with uniform heartbeat gaps in [2, 8]. The acceptance bar for any
/// schedule is that the merged BENCH_campaign.json stays byte-identical
/// to an undisturbed run — chaos may cost retries, never results.
class ChaosSchedule {
 public:
  ChaosSchedule() = default;
  static ChaosSchedule Make(std::uint64_t seed, int kills, int stops);

  bool active() const { return next_ < events_.size(); }
  /// The event due at `heartbeats` total heartbeat bytes, or nullptr.
  /// Advances past the event it returns.
  const ChaosEvent* Due(std::uint64_t heartbeats);

  const std::vector<ChaosEvent>& events() const { return events_; }

 private:
  std::vector<ChaosEvent> events_;
  std::size_t next_ = 0;
};

}  // namespace pcpda

#endif  // PCPDA_SUPERVISOR_CHAOS_H_
