#ifndef PCPDA_SUPERVISOR_SUPERVISOR_H_
#define PCPDA_SUPERVISOR_SUPERVISOR_H_

#include <csignal>
#include <cstdint>
#include <chrono>
#include <deque>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "campaign/spec.h"
#include "common/status.h"
#include "supervisor/chaos.h"

namespace pcpda {

/// How a multi-process campaign is supervised. Everything here is
/// execution policy: nothing in it can change a job's result, so a
/// supervised run merges byte-identically to an in-process one
/// (tests/supervisor_test.cc pins that equality).
struct SupervisorOptions {
  /// Campaign output directory (checkpoints, MANIFEST, BENCH,
  /// SUPERVISOR.json, quarantine/).
  std::string out_dir;
  /// The worker executable: pcpda_campaign itself, re-exec'd with
  /// --worker. The CLI resolves /proc/self/exe; tests point it at the
  /// built binary.
  std::string worker_binary;
  /// Concurrent worker processes. Only one worker ever owns a shard
  /// checkpoint at a time (two appenders on one file would interleave
  /// destructively), so values above the live task count idle.
  int max_workers = 2;
  /// --jobs forwarded to each worker (threads inside the process).
  int worker_jobs = 1;
  /// fsync per record in workers (forwarded as --no-fsync when false).
  bool fsync = true;

  // --- hang detection and escalation -----------------------------------
  /// No heartbeat from a worker for this long → SIGTERM (cooperative
  /// stop). Workers heartbeat once per durable record plus once at
  /// startup, so this must comfortably exceed the slowest single job.
  int stall_timeout_ms = 10'000;
  /// SIGTERM unanswered for this long → SIGKILL. Covers workers wedged
  /// in native code (or SIGSTOPped), which cooperative stop cannot reach.
  int term_grace_ms = 2'000;
  /// Whole-task wall-clock deadline (spawn to exit); 0 = off. The
  /// backstop for a worker that keeps heartbeating but never finishes.
  int shard_deadline_ms = 0;

  // --- retry, backoff, bisection ---------------------------------------
  /// Attempts per task (initial + retries) before its pending jobs are
  /// abandoned as a degraded-but-accounted result.
  int max_task_attempts = 8;
  /// Consecutive involuntary worker deaths *without checkpoint progress*
  /// before the task's pending range is bisected to isolate a poison job.
  int bisect_after = 2;
  /// Exponential backoff base for retries; the delay for attempt k is
  /// min(base << (k-1), cap) plus deterministic seeded jitter in
  /// [0, base).
  int backoff_base_ms = 100;
  int backoff_cap_ms = 5'000;

  // --- chaos self-test --------------------------------------------------
  /// Seed of the injection schedule; 0 disables chaos.
  std::uint64_t chaos_seed = 0;
  /// SIGKILL / SIGSTOP injections against live workers (see chaos.h).
  int chaos_kills = 0;
  int chaos_stops = 0;

  // --- fault injection forwarded to workers ----------------------------
  std::int64_t inject_crash_job = -1;  // worker-internal throw
  std::int64_t inject_hang_job = -1;   // worker-internal cooperative hang
  std::int64_t inject_segv_job = -1;   // worker process SIGSEGV
  std::int64_t inject_spin_job = -1;   // worker process uncooperative spin
  /// Forwarded as --no-lint-preflight when false.
  bool lint_preflight = true;

  // --- graceful stop ----------------------------------------------------
  /// The CLI's sigaction flag (volatile sig_atomic_t, set by the
  /// SIGINT/SIGTERM handler). When it becomes nonzero the supervisor
  /// SIGTERMs every worker, stops spawning, and merges what is recorded.
  const volatile std::sig_atomic_t* signal_flag = nullptr;
  /// Read end of the CLI's self-pipe: makes poll() wake immediately on a
  /// signal instead of at the next tick. -1 = poll timeout only.
  int signal_rfd = -1;
};

/// Process-level accounting of one supervised run. Written to
/// SUPERVISOR.json (separate from MANIFEST.json, which stays
/// byte-comparable across disturbed/undisturbed runs — attempt counts
/// are nondeterministic by nature).
struct SupervisorStats {
  std::int64_t workers_spawned = 0;
  std::int64_t clean_exits = 0;
  /// Worker exited with a nonzero code (spec/IO error or stop-pending).
  std::int64_t error_exits = 0;
  /// Deterministic crash signals: SIGSEGV, SIGABRT, SIGBUS, SIGILL,
  /// SIGFPE.
  std::int64_t crash_deaths = 0;
  /// SIGKILL deaths not sent by us: the OOM killer's signature (chaos
  /// kills are counted separately below).
  std::int64_t kill_deaths = 0;
  std::int64_t other_signal_deaths = 0;
  /// SIGTERM escalations by the stall/deadline detector.
  std::int64_t hang_escalations = 0;
  std::int64_t retries = 0;
  std::int64_t bisections = 0;
  std::int64_t poison_jobs = 0;
  /// Tasks whose pending jobs were given up after max_task_attempts.
  std::int64_t abandoned_tasks = 0;
  std::int64_t chaos_kills_injected = 0;
  std::int64_t chaos_stops_injected = 0;
  std::int64_t heartbeats = 0;
};

/// The process-isolated campaign scheduler: forks pcpda_campaign
/// --worker per shard, monitors heartbeat pipes and per-shard deadlines,
/// reaps via SIGCHLD (self-pipe, no zombies), classifies deaths by exit
/// code vs signal, retries with capped exponential backoff and seeded
/// jitter, and — when a range keeps killing its worker without
/// checkpoint progress — bisects the pending job range until the single
/// poison job is isolated, records it as outcome "crash", and
/// quarantines it so the rest of the campaign completes. DESIGN.md §14.
///
/// One Supervisor at a time per process (it owns the process's SIGCHLD
/// disposition while Run() executes).
class Supervisor {
 public:
  Supervisor(CampaignSpec spec, SupervisorOptions options);

  /// Runs the campaign to completion (or degraded completion), then
  /// merges. Non-OK only for setup/IO errors; worker failures are
  /// policy, reflected in the report and stats.
  StatusOr<CampaignReport> Run();

  const SupervisorStats& stats() const { return stats_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// One schedulable unit: the pending jobs of `shard` with global ids
  /// in [lo, hi) (-1 bounds = the whole shard). Bisection splits tasks;
  /// nothing else creates them after startup.
  struct Task {
    int shard = 0;
    std::int64_t lo = -1;
    std::int64_t hi = -1;
    int attempts = 0;
    /// Consecutive involuntary deaths with zero new records.
    int deaths_without_progress = 0;
    Clock::time_point eligible_at{};
  };

  /// A live worker process.
  struct Worker {
    Task task;
    ::pid_t pid = -1;
    int hb_fd = -1;
    /// Records already present in the task range when it spawned — the
    /// progress baseline its death is judged against.
    std::int64_t recorded_at_spawn = 0;
    Clock::time_point started{};
    Clock::time_point last_beat{};
    bool term_sent = false;
    Clock::time_point term_at{};
    /// This worker was chaos-injected: its death is scheduled noise, not
    /// evidence — no retry/bisection counters move.
    bool chaos = false;
  };

  Status SpawnEligible();
  Status Spawn(const Task& task);
  void ReapAll();
  void HandleDeath(Worker worker, int wait_status);
  void CheckStalls();
  void DrainHeartbeats(std::size_t worker_index);
  void RequestStop();
  /// Pending (unrecorded) job ids of a task's range, in id order.
  StatusOr<std::vector<std::int64_t>> PendingJobs(const Task& task) const;
  std::vector<std::string> WorkerArgs(const Task& task, int hb_fd) const;
  int BackoffMs(const Task& task) const;
  bool ShardBusy(int shard) const;
  std::string RenderStats() const;

  const CampaignSpec spec_;
  const SupervisorOptions options_;
  Campaign campaign_;  // merge / poison-record access to the checkpoints
  ChaosSchedule chaos_;
  std::deque<Task> queue_;
  std::vector<Worker> live_;
  SupervisorStats stats_;
  bool stopping_ = false;
  bool fatal_ = false;
  Status fatal_status_;
};

}  // namespace pcpda

#endif  // PCPDA_SUPERVISOR_SUPERVISOR_H_
