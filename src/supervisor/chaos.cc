#include "supervisor/chaos.h"

#include "common/rng.h"

namespace pcpda {

ChaosSchedule ChaosSchedule::Make(std::uint64_t seed, int kills,
                                  int stops) {
  ChaosSchedule schedule;
  if (kills <= 0 && stops <= 0) return schedule;
  Rng rng(seed);
  // Interleave the two kinds by shuffling the kind sequence, then space
  // the events with uniform heartbeat gaps so injections land mid-shard
  // rather than bunched at startup.
  std::vector<bool> kinds;
  kinds.reserve(static_cast<std::size_t>(kills + stops));
  for (int i = 0; i < kills; ++i) kinds.push_back(true);
  for (int i = 0; i < stops; ++i) kinds.push_back(false);
  rng.Shuffle(kinds);
  std::uint64_t at = 0;
  schedule.events_.reserve(kinds.size());
  for (bool kill : kinds) {
    at += static_cast<std::uint64_t>(rng.UniformInt(2, 8));
    schedule.events_.push_back(ChaosEvent{at, kill});
  }
  return schedule;
}

const ChaosEvent* ChaosSchedule::Due(std::uint64_t heartbeats) {
  if (next_ >= events_.size()) return nullptr;
  if (heartbeats < events_[next_].at_heartbeat) return nullptr;
  return &events_[next_++];
}

}  // namespace pcpda
